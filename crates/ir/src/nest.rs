//! The loop-nest IR proper: arrays, references, statements, loops.

use crate::expr::Expr;
use crate::subscript::{resolve, AffineSub};
use std::collections::BTreeMap;
use std::fmt;
use ujam_linalg::Mat;

/// A declared array with its extents (Fortran column-major order: the first
/// dimension is contiguous in memory).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArrayDecl {
    name: String,
    dims: Vec<i64>,
}

impl ArrayDecl {
    /// Creates a declaration.
    ///
    /// # Panics
    ///
    /// Panics if any extent is non-positive.
    pub fn new(name: &str, dims: &[i64]) -> ArrayDecl {
        assert!(
            dims.iter().all(|&d| d > 0),
            "array {name} has a non-positive extent"
        );
        ArrayDecl {
            name: name.to_string(),
            dims: dims.to_vec(),
        }
    }

    /// The array name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The extents, first (contiguous) dimension first.
    pub fn dims(&self) -> &[i64] {
        &self.dims
    }

    /// Total number of elements.
    pub fn len(&self) -> i64 {
        self.dims.iter().product()
    }

    /// `true` only for a degenerate zero-dimensional declaration.
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    /// Column-major linear offset of an element given its (1-based, as in
    /// Fortran) subscript values.
    ///
    /// # Panics
    ///
    /// Panics if the subscript rank differs from the declaration.
    pub fn linearize(&self, subscript: &[i64]) -> i64 {
        assert_eq!(subscript.len(), self.dims.len(), "rank mismatch");
        let mut addr = 0;
        let mut stride = 1;
        for (s, d) in subscript.iter().zip(&self.dims) {
            addr += (s - 1) * stride;
            stride *= d;
        }
        addr
    }
}

/// A reference to an array with symbolic affine subscripts.
///
/// In an expression context the reference is a *use* (load); as the
/// left-hand side of a [`Stmt`] it is a *def* (store).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct ArrayRef {
    array: String,
    dims: Vec<AffineSub>,
}

impl ArrayRef {
    /// Creates a reference to `array` with the given subscript dimensions.
    pub fn new(array: &str, dims: Vec<AffineSub>) -> ArrayRef {
        ArrayRef {
            array: array.to_string(),
            dims,
        }
    }

    /// The referenced array's name.
    pub fn array(&self) -> &str {
        &self.array
    }

    /// The subscript dimensions.
    pub fn dims(&self) -> &[AffineSub] {
        &self.dims
    }

    /// Mutable access to the subscript dimensions (used by transformations).
    pub(crate) fn dims_mut(&mut self) -> &mut [AffineSub] {
        &mut self.dims
    }

    /// Resolves the reference against an ordered loop-variable list
    /// (outermost first), yielding the access matrix `H` and offset `c` of
    /// the uniformly-generated form `A(H·i + c)`.
    pub fn access_matrix(&self, loop_vars: &[&str]) -> (Mat, Vec<i64>) {
        resolve(&self.dims, loop_vars)
    }

    /// Evaluates the subscript at concrete index values.
    pub fn eval(&self, env: &BTreeMap<&str, i64>) -> Vec<i64> {
        self.dims.iter().map(|d| d.eval(env)).collect()
    }

    /// `true` if every subscript dimension uses at most one induction
    /// variable and no variable appears in two dimensions (§3.5 SIV,
    /// separable).
    pub fn is_siv_separable(&self, loop_vars: &[&str]) -> bool {
        let (h, _) = self.access_matrix(loop_vars);
        h.is_siv_separable() && self.dims.iter().all(|d| d.num_vars() <= 1)
    }
}

impl fmt::Display for ArrayRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.array)?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Debug for ArrayRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ArrayRef({self})")
    }
}

/// The assignment target of a statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Lhs {
    /// Store to an array element.
    Array(ArrayRef),
    /// Assignment to a scalar (register-resident accumulator).
    Scalar(String),
}

/// A single assignment statement `lhs = rhs`.
#[derive(Clone, Debug, PartialEq)]
pub struct Stmt {
    lhs: Lhs,
    rhs: Expr,
}

impl Stmt {
    /// Creates an array-assignment statement.
    pub fn assign(lhs: ArrayRef, rhs: Expr) -> Stmt {
        Stmt {
            lhs: Lhs::Array(lhs),
            rhs,
        }
    }

    /// Creates a scalar-assignment statement (e.g. a reduction accumulator).
    pub fn assign_scalar(name: &str, rhs: Expr) -> Stmt {
        Stmt {
            lhs: Lhs::Scalar(name.to_string()),
            rhs,
        }
    }

    /// The assignment target.
    pub fn lhs(&self) -> &Lhs {
        &self.lhs
    }

    /// The right-hand-side expression.
    pub fn rhs(&self) -> &Expr {
        &self.rhs
    }

    /// Mutable right-hand side (used by transformations).
    pub fn rhs_mut(&mut self) -> &mut Expr {
        &mut self.rhs
    }

    /// Mutable target (used by transformations).
    pub fn lhs_mut(&mut self) -> &mut Lhs {
        &mut self.lhs
    }

    /// Array references in evaluation order: RHS uses left-to-right, then
    /// the LHS def (Fortran stores after evaluating the right-hand side).
    pub fn refs(&self) -> Vec<(&ArrayRef, bool)> {
        let mut out: Vec<(&ArrayRef, bool)> =
            self.rhs.refs().into_iter().map(|r| (r, false)).collect();
        if let Lhs::Array(a) = &self.lhs {
            out.push((a, true));
        }
        out
    }

    /// Floating-point operations executed by the statement.
    pub fn flops(&self) -> usize {
        self.rhs.flops()
    }
}

/// A `DO`-loop header: `DO var = lower, upper, step`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Loop {
    var: String,
    lower: i64,
    upper: i64,
    step: i64,
}

impl Loop {
    /// Creates a unit-step loop over `[lower, upper]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `upper < lower`.
    pub fn new(var: &str, lower: i64, upper: i64) -> Loop {
        assert!(upper >= lower, "empty loop {var}");
        Loop {
            var: var.to_string(),
            lower,
            upper,
            step: 1,
        }
    }

    /// The induction-variable name.
    pub fn var(&self) -> &str {
        &self.var
    }

    /// Inclusive lower bound.
    pub fn lower(&self) -> i64 {
        self.lower
    }

    /// Inclusive upper bound.
    pub fn upper(&self) -> i64 {
        self.upper
    }

    /// Step (1 unless the loop has been unrolled).
    pub fn step(&self) -> i64 {
        self.step
    }

    /// Sets the step (used by unroll-and-jam).
    pub(crate) fn set_step(&mut self, step: i64) {
        assert!(step >= 1, "non-positive loop step");
        self.step = step;
    }

    /// Number of iterations the loop executes.
    pub fn trip_count(&self) -> i64 {
        (self.upper - self.lower) / self.step + 1
    }

    /// The concrete index values the loop takes, in order.
    pub fn values(&self) -> impl Iterator<Item = i64> + '_ {
        (0..self.trip_count()).map(move |k| self.lower + k * self.step)
    }
}

/// Identifies one array reference inside a [`LoopNest`] body.
///
/// `stmt` is the statement index; `pos` is the reference's position in the
/// statement's evaluation order ([`Stmt::refs`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RefId {
    /// Statement index within the body.
    pub stmt: usize,
    /// Position within the statement's evaluation order.
    pub pos: usize,
}

/// A reference together with its identity and def/use role.
#[derive(Clone, Debug, PartialEq)]
pub struct RefInfo {
    /// Where the reference lives.
    pub id: RefId,
    /// The reference itself.
    pub aref: ArrayRef,
    /// `true` for a store (LHS), `false` for a load.
    pub is_def: bool,
}

/// A perfect affine loop nest: the program unit unroll-and-jam operates on.
///
/// Loops are ordered outermost first; the body is a straight-line sequence
/// of assignments executed in the innermost loop.  A transformation may
/// additionally attach a *prologue* and *epilogue*: statements executed
/// once per innermost-loop instance, immediately before its first and
/// after its last iteration (scalar replacement uses them to prime and
/// drain register temporaries).  Analyses deliberately ignore both — the
/// steady-state body is what the balance and register models measure.
#[derive(Clone, Debug, PartialEq)]
pub struct LoopNest {
    name: String,
    arrays: Vec<ArrayDecl>,
    loops: Vec<Loop>,
    body: Vec<Stmt>,
    prologue: Vec<Stmt>,
    epilogue: Vec<Stmt>,
}

impl LoopNest {
    /// Assembles a nest; prefer [`crate::NestBuilder`], which validates.
    pub fn new(name: &str, arrays: Vec<ArrayDecl>, loops: Vec<Loop>, body: Vec<Stmt>) -> LoopNest {
        LoopNest {
            name: name.to_string(),
            arrays,
            loops,
            body,
            prologue: Vec::new(),
            epilogue: Vec::new(),
        }
    }

    /// The nest's (diagnostic) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared arrays.
    pub fn arrays(&self) -> &[ArrayDecl] {
        &self.arrays
    }

    /// Looks up an array declaration by name.
    pub fn array(&self, name: &str) -> Option<&ArrayDecl> {
        self.arrays.iter().find(|a| a.name() == name)
    }

    /// The loops, outermost first.
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// Mutable loops (used by transformations).
    pub(crate) fn loops_mut(&mut self) -> &mut [Loop] {
        &mut self.loops
    }

    /// Nest depth.
    pub fn depth(&self) -> usize {
        self.loops.len()
    }

    /// The body statements.
    pub fn body(&self) -> &[Stmt] {
        &self.body
    }

    /// Mutable body (used by transformations).
    pub fn body_mut(&mut self) -> &mut Vec<Stmt> {
        &mut self.body
    }

    /// Statements executed once per innermost-loop instance, before its
    /// first iteration (e.g. scalar-replacement priming loads).
    pub fn prologue(&self) -> &[Stmt] {
        &self.prologue
    }

    /// Mutable prologue (used by transformations).
    pub fn prologue_mut(&mut self) -> &mut Vec<Stmt> {
        &mut self.prologue
    }

    /// Statements executed once per innermost-loop instance, after its
    /// last iteration (e.g. scalar-replacement draining stores).
    pub fn epilogue(&self) -> &[Stmt] {
        &self.epilogue
    }

    /// Mutable epilogue (used by transformations).
    pub fn epilogue_mut(&mut self) -> &mut Vec<Stmt> {
        &mut self.epilogue
    }

    /// Loop-variable names, outermost first.
    pub fn loop_vars(&self) -> Vec<&str> {
        self.loops.iter().map(|l| l.var()).collect()
    }

    /// Every array reference in the body, in execution order.
    pub fn refs(&self) -> Vec<RefInfo> {
        let mut out = Vec::new();
        for (s, stmt) in self.body.iter().enumerate() {
            for (pos, (aref, is_def)) in stmt.refs().into_iter().enumerate() {
                out.push(RefInfo {
                    id: RefId { stmt: s, pos },
                    aref: aref.clone(),
                    is_def,
                });
            }
        }
        out
    }

    /// Floating-point operations per innermost iteration.
    pub fn flops_per_iter(&self) -> usize {
        self.body.iter().map(|s| s.flops()).sum()
    }

    /// Total innermost iterations executed by the whole nest.
    pub fn iterations(&self) -> i64 {
        self.loops.iter().map(|l| l.trip_count()).product()
    }

    /// `true` if every reference is separable SIV (§3.5), the class the
    /// Carr–Guan analysis targets.
    pub fn is_siv_separable(&self) -> bool {
        let vars = self.loop_vars();
        self.refs().iter().all(|r| r.aref.is_siv_separable(&vars))
    }

    /// Checks internal consistency; returns a description of the first
    /// problem found.
    ///
    /// # Errors
    ///
    /// Reports unbound subscript variables, references to undeclared
    /// arrays, rank mismatches, and duplicate loop variables.
    pub fn validate(&self) -> Result<(), String> {
        let vars = self.loop_vars();
        for (i, v) in vars.iter().enumerate() {
            if vars[i + 1..].contains(v) {
                return Err(format!("duplicate loop variable {v}"));
            }
        }
        for r in self.refs() {
            let Some(decl) = self.array(r.aref.array()) else {
                return Err(format!("reference to undeclared array {}", r.aref.array()));
            };
            if decl.dims().len() != r.aref.dims().len() {
                return Err(format!(
                    "rank mismatch on {}: declared {}, referenced {}",
                    r.aref.array(),
                    decl.dims().len(),
                    r.aref.dims().len()
                ));
            }
            for d in r.aref.dims() {
                for (var, _) in d.terms() {
                    if !vars.contains(&var) {
                        return Err(format!("unbound subscript variable {var} in {}", r.aref));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, Expr};
    use crate::subscript::{sub, subs};

    fn two_deep() -> LoopNest {
        // DO J = 1,4 ; DO I = 1,8 ; A(J) = A(J) + B(I)
        let a_j = ArrayRef::new("A", subs(&[sub("J")]));
        let b_i = ArrayRef::new("B", subs(&[sub("I")]));
        let rhs = Expr::bin(BinOp::Add, Expr::Ref(a_j.clone()), Expr::Ref(b_i));
        LoopNest::new(
            "t",
            vec![ArrayDecl::new("A", &[4]), ArrayDecl::new("B", &[8])],
            vec![Loop::new("J", 1, 4), Loop::new("I", 1, 8)],
            vec![Stmt::assign(a_j, rhs)],
        )
    }

    #[test]
    fn refs_enumerate_in_execution_order() {
        let n = two_deep();
        let refs = n.refs();
        assert_eq!(refs.len(), 3);
        assert_eq!(refs[0].aref.array(), "A");
        assert!(!refs[0].is_def);
        assert_eq!(refs[1].aref.array(), "B");
        assert!(refs[2].is_def);
        assert_eq!(refs[2].id, RefId { stmt: 0, pos: 2 });
    }

    #[test]
    fn access_matrix_resolution() {
        let n = two_deep();
        let vars = n.loop_vars();
        let (h, c) = n.refs()[0].aref.access_matrix(&vars);
        assert_eq!(h.row(0), &[1, 0]); // A(J): J is outermost
        assert_eq!(c, vec![0]);
    }

    #[test]
    fn counts() {
        let n = two_deep();
        assert_eq!(n.flops_per_iter(), 1);
        assert_eq!(n.iterations(), 32);
        assert_eq!(n.depth(), 2);
        assert!(n.is_siv_separable());
        n.validate().unwrap();
    }

    #[test]
    fn loop_trip_and_values() {
        let mut l = Loop::new("I", 1, 10);
        assert_eq!(l.trip_count(), 10);
        l.set_step(3);
        assert_eq!(l.values().collect::<Vec<_>>(), vec![1, 4, 7, 10]);
        assert_eq!(l.trip_count(), 4);
    }

    #[test]
    fn linearize_is_column_major() {
        let d = ArrayDecl::new("A", &[10, 5]);
        assert_eq!(d.linearize(&[1, 1]), 0);
        assert_eq!(d.linearize(&[2, 1]), 1); // first dim contiguous
        assert_eq!(d.linearize(&[1, 2]), 10);
        assert_eq!(d.len(), 50);
    }

    #[test]
    fn validation_catches_unbound_and_undeclared() {
        let bad_ref = ArrayRef::new("Z", subs(&[sub("I")]));
        let n = LoopNest::new(
            "bad",
            vec![],
            vec![Loop::new("I", 1, 2)],
            vec![Stmt::assign(bad_ref, Expr::Const(0.0))],
        );
        assert!(n.validate().unwrap_err().contains("undeclared"));

        let unbound = ArrayRef::new("A", subs(&[sub("K")]));
        let n = LoopNest::new(
            "bad2",
            vec![ArrayDecl::new("A", &[4])],
            vec![Loop::new("I", 1, 2)],
            vec![Stmt::assign(unbound, Expr::Const(0.0))],
        );
        assert!(n.validate().unwrap_err().contains("unbound"));
    }

    #[test]
    fn validation_catches_rank_mismatch_and_dup_vars() {
        let r = ArrayRef::new("A", subs(&[sub("I"), sub("I")]));
        let n = LoopNest::new(
            "bad3",
            vec![ArrayDecl::new("A", &[4])],
            vec![Loop::new("I", 1, 2)],
            vec![Stmt::assign(r, Expr::Const(0.0))],
        );
        assert!(n.validate().unwrap_err().contains("rank mismatch"));

        let n = LoopNest::new(
            "bad4",
            vec![],
            vec![Loop::new("I", 1, 2), Loop::new("I", 1, 2)],
            vec![],
        );
        assert!(n.validate().unwrap_err().contains("duplicate"));
    }
}
