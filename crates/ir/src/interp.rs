//! A reference interpreter for loop nests.
//!
//! The interpreter exists to *verify transformations*: unroll-and-jam must
//! preserve program semantics, and the test suites execute original and
//! transformed nests on deterministic initial data and compare final memory.
//! Storage is a sparse map keyed by `(array, subscript)`, with a
//! deterministic pseudo-random initial value per cell, so kernels may read
//! slightly outside their declared extents (ghost cells) without special
//! set-up.

use crate::expr::{BinOp, Expr};
use crate::nest::{Lhs, LoopNest};
use std::collections::BTreeMap;

/// Final machine state after executing a nest.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExecState {
    /// Array cells that were written, keyed by `(array, subscript values)`.
    pub cells: BTreeMap<(String, Vec<i64>), f64>,
    /// Final scalar values.
    pub scalars: BTreeMap<String, f64>,
}

/// Deterministic initial value of an array cell (never exactly zero, so
/// multiplicative kernels stay informative).
fn initial_value(array: &str, subscript: &[i64]) -> f64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in array.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    for &s in subscript {
        h = (h ^ s as u64).wrapping_mul(0x1000_0000_01b3);
    }
    ((h % 1000) as f64 + 1.0) / 61.0
}

/// Executes the nest and returns the written cells and scalar values.
///
/// # Example
///
/// ```
/// use ujam_ir::{NestBuilder, interp::execute};
/// let nest = NestBuilder::new("fill")
///     .array("A", &[4])
///     .loop_("I", 1, 4)
///     .stmt("A(I) = 2.0")
///     .build();
/// let out = execute(&nest);
/// assert_eq!(out.cells[&("A".to_string(), vec![3])], 2.0);
/// ```
pub fn execute(nest: &LoopNest) -> ExecState {
    let mut state = ExecState::default();
    let mut env: BTreeMap<&str, i64> = BTreeMap::new();
    run_level(nest, 0, &mut env, &mut state);
    state
}

fn run_level<'a>(
    nest: &'a LoopNest,
    level: usize,
    env: &mut BTreeMap<&'a str, i64>,
    state: &mut ExecState,
) {
    if level == nest.depth() {
        exec_stmts(nest.body(), env, state);
        return;
    }
    let l = &nest.loops()[level];
    // The prologue/epilogue bracket each *instance* of the innermost
    // loop: they run with the outer induction variables bound but the
    // innermost one out of scope (its iterations are pinned to
    // constants by the transformation that emitted them).
    let innermost = level + 1 == nest.depth();
    if innermost {
        exec_stmts(nest.prologue(), env, state);
    }
    for v in l.values() {
        env.insert(l.var(), v);
        run_level(nest, level + 1, env, state);
    }
    env.remove(l.var());
    if innermost {
        exec_stmts(nest.epilogue(), env, state);
    }
}

fn exec_stmts(stmts: &[crate::nest::Stmt], env: &BTreeMap<&str, i64>, state: &mut ExecState) {
    for stmt in stmts {
        let value = eval(stmt.rhs(), env, state);
        match stmt.lhs() {
            Lhs::Array(a) => {
                let sub = a.eval(env);
                state.cells.insert((a.array().to_string(), sub), value);
            }
            Lhs::Scalar(s) => {
                state.scalars.insert(s.clone(), value);
            }
        }
    }
}

fn eval(e: &Expr, env: &BTreeMap<&str, i64>, state: &ExecState) -> f64 {
    match e {
        Expr::Const(c) => *c,
        Expr::Scalar(s) => state.scalars.get(s).copied().unwrap_or(0.0),
        Expr::Ref(r) => {
            let sub = r.eval(env);
            let key = (r.array().to_string(), sub);
            state
                .cells
                .get(&key)
                .copied()
                .unwrap_or_else(|| initial_value(&key.0, &key.1))
        }
        Expr::Bin(op, l, rhs) => {
            let (a, b) = (eval(l, env, state), eval(rhs, env, state));
            match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b,
            }
        }
        Expr::Neg(inner) => -eval(inner, env, state),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NestBuilder;

    #[test]
    fn reduction_accumulates() {
        // A(J) = A(J) + B(I) over I=1..3 accumulates three B values.
        let nest = NestBuilder::new("red")
            .array("A", &[2])
            .array("B", &[4])
            .loop_("J", 1, 1)
            .loop_("I", 1, 3)
            .stmt("A(J) = A(J) + B(I)")
            .build();
        let out = execute(&nest);
        let expect = initial_value("A", &[1])
            + initial_value("B", &[1])
            + initial_value("B", &[2])
            + initial_value("B", &[3]);
        let got = out.cells[&("A".to_string(), vec![1])];
        assert!((got - expect).abs() < 1e-9);
    }

    #[test]
    fn scalar_accumulator() {
        let nest = NestBuilder::new("dot")
            .array("X", &[4])
            .loop_("I", 1, 4)
            .stmt("s = s + X(I) * X(I)")
            .build();
        let out = execute(&nest);
        let expect: f64 = (1..=4).map(|i| initial_value("X", &[i]).powi(2)).sum();
        assert!((out.scalars["s"] - expect).abs() < 1e-9);
    }

    #[test]
    fn stencil_reads_initial_neighbours() {
        let nest = NestBuilder::new("shift")
            .array("A", &[8])
            .loop_("I", 1, 4)
            .stmt("A(I) = A(I+1)")
            .build();
        let out = execute(&nest);
        // A(1) gets the original A(2) (the write to A(1) happens before
        // A(2) is ever written... it never is: writes cover A(1..4) but
        // reads are of A(2..5); A(2) is read at I=1 before being written at
        // I=2).
        assert_eq!(
            out.cells[&("A".to_string(), vec![1])],
            initial_value("A", &[2])
        );
        // A(4) reads A(5) which is never written.
        assert_eq!(
            out.cells[&("A".to_string(), vec![4])],
            initial_value("A", &[5])
        );
    }

    #[test]
    fn initial_values_are_deterministic_and_distinct() {
        assert_eq!(initial_value("A", &[1, 2]), initial_value("A", &[1, 2]));
        assert_ne!(initial_value("A", &[1, 2]), initial_value("A", &[2, 1]));
        assert_ne!(initial_value("A", &[1]), initial_value("B", &[1]));
    }
}
