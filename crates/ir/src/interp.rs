//! A reference interpreter for loop nests.
//!
//! The interpreter exists to *verify transformations*: unroll-and-jam must
//! preserve program semantics, and the test suites execute original and
//! transformed nests on deterministic initial data and compare final memory.
//! Storage is a sparse map keyed by `(array, subscript)`, with a
//! deterministic pseudo-random initial value per cell, so kernels may read
//! slightly outside their declared extents (ghost cells) without special
//! set-up.

use crate::expr::{BinOp, Expr};
use crate::nest::{Lhs, LoopNest};
use std::collections::BTreeMap;

/// Whether a tapped memory access reads or writes the cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// The cell was loaded (an `Expr::Ref` on a right-hand side).
    Read,
    /// The cell was stored (an `Lhs::Array` assignment).
    Write,
}

/// An observer of the interpreter's array traffic: one call per array
/// access, in program order, carrying the array name, the column-major
/// flattened element index ([`crate::ArrayDecl::linearize`] — possibly
/// outside the declared extent for ghost cells), and the access kind.
///
/// The tap sees *semantic* accesses — every reference the program text
/// performs, before any register allocation a backend might do — which
/// is exactly the stream a reuse-distance profiler wants.  Scalars are
/// not memory here (they model registers) and are never reported.
pub trait AccessTap {
    /// Called once per array access.
    fn access(&mut self, array: &str, flat: i64, kind: AccessKind);
}

/// The no-op tap behind plain [`execute`].  Its empty inlined methods
/// monomorphize away entirely, so the untapped interpreter pays nothing
/// for the instrumentation points.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullTap;

impl AccessTap for NullTap {
    #[inline(always)]
    fn access(&mut self, _array: &str, _flat: i64, _kind: AccessKind) {}
}

/// An [`AccessTap`] that forwards every event to a closure — the glue a
/// profiler outside this crate uses to stream events into its own
/// accounting without implementing the trait on its public types.
pub struct FnTap<F: FnMut(&str, i64, AccessKind)>(pub F);

impl<F: FnMut(&str, i64, AccessKind)> AccessTap for FnTap<F> {
    #[inline]
    fn access(&mut self, array: &str, flat: i64, kind: AccessKind) {
        (self.0)(array, flat, kind)
    }
}

/// Final machine state after executing a nest.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExecState {
    /// Array cells that were written, keyed by `(array, subscript values)`.
    pub cells: BTreeMap<(String, Vec<i64>), f64>,
    /// Final scalar values.
    pub scalars: BTreeMap<String, f64>,
}

/// Deterministic initial value of an array cell (never exactly zero, so
/// multiplicative kernels stay informative).
fn initial_value(array: &str, subscript: &[i64]) -> f64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in array.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    for &s in subscript {
        h = (h ^ s as u64).wrapping_mul(0x1000_0000_01b3);
    }
    ((h % 1000) as f64 + 1.0) / 61.0
}

/// Executes the nest and returns the written cells and scalar values.
///
/// # Example
///
/// ```
/// use ujam_ir::{NestBuilder, interp::execute};
/// let nest = NestBuilder::new("fill")
///     .array("A", &[4])
///     .loop_("I", 1, 4)
///     .stmt("A(I) = 2.0")
///     .build();
/// let out = execute(&nest);
/// assert_eq!(out.cells[&("A".to_string(), vec![3])], 2.0);
/// ```
pub fn execute(nest: &LoopNest) -> ExecState {
    execute_with_tap(nest, &mut NullTap)
}

/// [`execute`], but streaming every array access to `tap` in program
/// order.  Accesses to arrays without a matching declaration (or whose
/// subscript rank disagrees with the declaration) still execute but are
/// not reported — they have no well-defined flattened address.
pub fn execute_with_tap<T: AccessTap + ?Sized>(nest: &LoopNest, tap: &mut T) -> ExecState {
    let mut state = ExecState::default();
    let mut env: BTreeMap<&str, i64> = BTreeMap::new();
    run_level(nest, 0, &mut env, &mut state, tap);
    state
}

/// Flattened address of `array(sub)`, or `None` when the declaration is
/// missing or of a different rank.
fn flat_addr(nest: &LoopNest, array: &str, sub: &[i64]) -> Option<i64> {
    let decl = nest.array(array)?;
    if decl.dims().len() != sub.len() {
        return None;
    }
    Some(decl.linearize(sub))
}

fn run_level<'a, T: AccessTap + ?Sized>(
    nest: &'a LoopNest,
    level: usize,
    env: &mut BTreeMap<&'a str, i64>,
    state: &mut ExecState,
    tap: &mut T,
) {
    if level == nest.depth() {
        exec_stmts(nest, nest.body(), env, state, tap);
        return;
    }
    let l = &nest.loops()[level];
    // The prologue/epilogue bracket each *instance* of the innermost
    // loop: they run with the outer induction variables bound but the
    // innermost one out of scope (its iterations are pinned to
    // constants by the transformation that emitted them).
    let innermost = level + 1 == nest.depth();
    if innermost {
        exec_stmts(nest, nest.prologue(), env, state, tap);
    }
    for v in l.values() {
        env.insert(l.var(), v);
        run_level(nest, level + 1, env, state, tap);
    }
    env.remove(l.var());
    if innermost {
        exec_stmts(nest, nest.epilogue(), env, state, tap);
    }
}

fn exec_stmts<T: AccessTap + ?Sized>(
    nest: &LoopNest,
    stmts: &[crate::nest::Stmt],
    env: &BTreeMap<&str, i64>,
    state: &mut ExecState,
    tap: &mut T,
) {
    for stmt in stmts {
        let value = eval(nest, stmt.rhs(), env, state, tap);
        match stmt.lhs() {
            Lhs::Array(a) => {
                let sub = a.eval(env);
                if let Some(flat) = flat_addr(nest, a.array(), &sub) {
                    tap.access(a.array(), flat, AccessKind::Write);
                }
                state.cells.insert((a.array().to_string(), sub), value);
            }
            Lhs::Scalar(s) => {
                state.scalars.insert(s.clone(), value);
            }
        }
    }
}

fn eval<T: AccessTap + ?Sized>(
    nest: &LoopNest,
    e: &Expr,
    env: &BTreeMap<&str, i64>,
    state: &ExecState,
    tap: &mut T,
) -> f64 {
    match e {
        Expr::Const(c) => *c,
        Expr::Scalar(s) => state.scalars.get(s).copied().unwrap_or(0.0),
        Expr::Ref(r) => {
            let sub = r.eval(env);
            if let Some(flat) = flat_addr(nest, r.array(), &sub) {
                tap.access(r.array(), flat, AccessKind::Read);
            }
            let key = (r.array().to_string(), sub);
            state
                .cells
                .get(&key)
                .copied()
                .unwrap_or_else(|| initial_value(&key.0, &key.1))
        }
        Expr::Bin(op, l, rhs) => {
            let (a, b) = (
                eval(nest, l, env, state, tap),
                eval(nest, rhs, env, state, tap),
            );
            match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b,
            }
        }
        Expr::Neg(inner) => -eval(nest, inner, env, state, tap),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NestBuilder;

    #[test]
    fn reduction_accumulates() {
        // A(J) = A(J) + B(I) over I=1..3 accumulates three B values.
        let nest = NestBuilder::new("red")
            .array("A", &[2])
            .array("B", &[4])
            .loop_("J", 1, 1)
            .loop_("I", 1, 3)
            .stmt("A(J) = A(J) + B(I)")
            .build();
        let out = execute(&nest);
        let expect = initial_value("A", &[1])
            + initial_value("B", &[1])
            + initial_value("B", &[2])
            + initial_value("B", &[3]);
        let got = out.cells[&("A".to_string(), vec![1])];
        assert!((got - expect).abs() < 1e-9);
    }

    #[test]
    fn scalar_accumulator() {
        let nest = NestBuilder::new("dot")
            .array("X", &[4])
            .loop_("I", 1, 4)
            .stmt("s = s + X(I) * X(I)")
            .build();
        let out = execute(&nest);
        let expect: f64 = (1..=4).map(|i| initial_value("X", &[i]).powi(2)).sum();
        assert!((out.scalars["s"] - expect).abs() < 1e-9);
    }

    #[test]
    fn stencil_reads_initial_neighbours() {
        let nest = NestBuilder::new("shift")
            .array("A", &[8])
            .loop_("I", 1, 4)
            .stmt("A(I) = A(I+1)")
            .build();
        let out = execute(&nest);
        // A(1) gets the original A(2) (the write to A(1) happens before
        // A(2) is ever written... it never is: writes cover A(1..4) but
        // reads are of A(2..5); A(2) is read at I=1 before being written at
        // I=2).
        assert_eq!(
            out.cells[&("A".to_string(), vec![1])],
            initial_value("A", &[2])
        );
        // A(4) reads A(5) which is never written.
        assert_eq!(
            out.cells[&("A".to_string(), vec![4])],
            initial_value("A", &[5])
        );
    }

    #[test]
    fn tap_sees_reads_then_write_in_program_order() {
        // B(I) is read (twice) before A(I) is written, per statement.
        let nest = NestBuilder::new("tap")
            .array("A", &[4])
            .array("B", &[4])
            .loop_("I", 1, 2)
            .stmt("A(I) = B(I) + B(I+1)")
            .build();
        let mut events = Vec::new();
        let mut tap = FnTap(|array: &str, flat: i64, kind: AccessKind| {
            events.push((array.to_string(), flat, kind));
        });
        let tapped = execute_with_tap(&nest, &mut tap);
        assert_eq!(
            events,
            vec![
                ("B".to_string(), 0, AccessKind::Read),
                ("B".to_string(), 1, AccessKind::Read),
                ("A".to_string(), 0, AccessKind::Write),
                ("B".to_string(), 1, AccessKind::Read),
                ("B".to_string(), 2, AccessKind::Read),
                ("A".to_string(), 1, AccessKind::Write),
            ]
        );
        // Tapping must not perturb semantics.
        assert_eq!(tapped, execute(&nest));
    }

    #[test]
    fn flat_addr_guards_unknown_and_mismatched_refs() {
        let nest = NestBuilder::new("guard")
            .array("A", &[10, 5])
            .loop_("I", 1, 2)
            .stmt("A(I, I) = 1.0")
            .build();
        assert_eq!(flat_addr(&nest, "A", &[2, 1]), Some(1));
        assert_eq!(flat_addr(&nest, "A", &[2]), None); // rank mismatch
        assert_eq!(flat_addr(&nest, "U", &[2]), None); // undeclared
    }

    #[test]
    fn initial_values_are_deterministic_and_distinct() {
        assert_eq!(initial_value("A", &[1, 2]), initial_value("A", &[1, 2]));
        assert_ne!(initial_value("A", &[1, 2]), initial_value("A", &[2, 1]));
        assert_ne!(initial_value("A", &[1]), initial_value("B", &[1]));
    }
}
