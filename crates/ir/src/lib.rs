//! An affine loop-nest intermediate representation for memory-hierarchy
//! transformations.
//!
//! This crate is the program substrate for the Carr–Guan unroll-and-jam
//! reproduction.  It models the programs the paper analyses: *perfect*
//! Fortran-style loop nests whose statements assign floating-point
//! expressions over array references with affine subscripts
//! `A(H·i + c)`.  The IR keeps subscripts symbolic (per-dimension affine
//! terms over loop index names) so that transformations are simple textual
//! rewrites, and resolves them to the `(H, c)` access-matrix form of the
//! Wolf–Lam reuse model on demand.
//!
//! Provided here:
//!
//! * [`LoopNest`], [`Loop`], [`Stmt`], [`Expr`], [`ArrayRef`] — the IR,
//! * [`NestBuilder`] and the [`sub`]/[`subs`] helpers — a builder DSL,
//! * a Fortran-flavoured pretty printer (`Display` on [`LoopNest`]),
//! * [`transform::unroll_and_jam`] — the actual code transformation the
//!   paper tunes (outer-loop unrolling + fusion of the copies),
//! * [`transform::scalar_replacement`] — register-level replacement of
//!   redundant loads (Callahan–Carr–Kennedy), used both as a real transform
//!   and as the brute-force oracle for the paper's table-based predictions.
//!
//! # Example
//!
//! ```
//! use ujam_ir::{NestBuilder, sub, subs, transform};
//!
//! // DO J = 1, 2N ; DO I = 1, M ; A(J) = A(J) + B(I)
//! let nest = NestBuilder::new("intro")
//!     .array("A", &[512])
//!     .array("B", &[512])
//!     .loop_("J", 1, 512)
//!     .loop_("I", 1, 256)
//!     .assign_expr("A", subs(&[sub("J")]), "A(J) + B(I)")
//!     .build();
//! // Unroll-and-jam the J loop by 1 (two copies), as in §3.3 of the paper.
//! let unrolled = transform::unroll_and_jam(&nest, &[1, 0]).unwrap();
//! assert_eq!(unrolled.body().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod expr;
pub mod interp;
mod nest;
mod pretty;
mod subscript;
pub mod transform;

pub use builder::{parse_expr, NestBuilder};
pub use expr::{BinOp, Expr};
pub use nest::{ArrayDecl, ArrayRef, Lhs, Loop, LoopNest, RefId, RefInfo, Stmt};
pub use subscript::{sub, sub_affine, sub_const, subs, AffineSub};
