//! Symbolic affine subscripts and their `(H, c)` resolution.

use std::collections::BTreeMap;
use std::fmt;
use ujam_linalg::Mat;

/// One dimension of an array subscript: an affine function of loop indices,
/// `Σ coef·index + offset`.
///
/// Subscripts are stored symbolically (index *names*, not positions) so that
/// transformations such as unroll-and-jam can rewrite them without knowing
/// the loop order; [`crate::ArrayRef::access_matrix`] resolves them against
/// a concrete loop list.
///
/// # Example
///
/// ```
/// use ujam_ir::{sub, sub_affine};
/// let simple = sub("I");                 // A(I)
/// let shifted = sub("I").offset(2);      // A(I+2)
/// let strided = sub_affine(&[(2, "J")], -1); // A(2J-1)
/// assert_eq!(shifted.to_string(), "I+2");
/// assert_eq!(strided.to_string(), "2J-1");
/// # let _ = (simple, strided);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct AffineSub {
    /// Map from index name to coefficient; zero coefficients are dropped.
    terms: BTreeMap<String, i64>,
    /// Constant part of the subscript.
    offset: i64,
}

impl AffineSub {
    /// A constant subscript (e.g. the `1` in `A(I, 1)`).
    pub fn constant(k: i64) -> AffineSub {
        AffineSub {
            terms: BTreeMap::new(),
            offset: k,
        }
    }

    /// Builds a subscript from `(coefficient, index-name)` terms plus offset.
    pub fn from_terms(terms: &[(i64, &str)], offset: i64) -> AffineSub {
        let mut map = BTreeMap::new();
        for &(coef, var) in terms {
            if coef != 0 {
                *map.entry(var.to_string()).or_insert(0) += coef;
            }
        }
        map.retain(|_, c| *c != 0);
        AffineSub { terms: map, offset }
    }

    /// Returns a copy with `delta` added to the constant part.
    pub fn offset(&self, delta: i64) -> AffineSub {
        let mut s = self.clone();
        s.offset += delta;
        s
    }

    /// The coefficient of index `var` (zero if absent).
    pub fn coef(&self, var: &str) -> i64 {
        self.terms.get(var).copied().unwrap_or(0)
    }

    /// The constant part.
    pub fn constant_part(&self) -> i64 {
        self.offset
    }

    /// Iterator over `(index-name, coefficient)` terms.
    pub fn terms(&self) -> impl Iterator<Item = (&str, i64)> {
        self.terms.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Number of distinct induction variables in this dimension.
    pub fn num_vars(&self) -> usize {
        self.terms.len()
    }

    /// Substitutes `var := var + delta`, folding the shift into the offset.
    ///
    /// This is the core rewrite of unroll-and-jam: a body copy at unroll
    /// offset `delta` of loop `var` sees `coef·(var + delta)`.
    pub fn shift_var(&mut self, var: &str, delta: i64) {
        if let Some(&c) = self.terms.get(var) {
            self.offset += c * delta;
        }
    }

    /// Substitutes `var := value`, removing the term and folding its
    /// contribution into the offset (no-op if `var` is absent).
    ///
    /// Scalar replacement uses this to materialise prologue loads: the
    /// innermost induction variable is pinned to a concrete iteration
    /// number, leaving a subscript valid outside the loop.
    pub fn bind_var(&mut self, var: &str, value: i64) {
        if let Some(c) = self.terms.remove(var) {
            self.offset += c * value;
        }
    }

    /// Evaluates the subscript at a concrete index assignment.
    ///
    /// # Panics
    ///
    /// Panics if a referenced index is missing from `env`.
    pub fn eval(&self, env: &BTreeMap<&str, i64>) -> i64 {
        let mut v = self.offset;
        for (var, coef) in self.terms() {
            v += coef
                * env
                    .get(var)
                    .unwrap_or_else(|| panic!("unbound index {var}"));
        }
        v
    }
}

impl fmt::Display for AffineSub {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (var, coef) in self.terms() {
            if first {
                match coef {
                    1 => write!(f, "{var}")?,
                    -1 => write!(f, "-{var}")?,
                    c => write!(f, "{c}{var}")?,
                }
                first = false;
            } else {
                match coef {
                    1 => write!(f, "+{var}")?,
                    -1 => write!(f, "-{var}")?,
                    c if c > 0 => write!(f, "+{c}{var}")?,
                    c => write!(f, "{c}{var}")?,
                }
            }
        }
        if first {
            write!(f, "{}", self.offset)?;
        } else if self.offset > 0 {
            write!(f, "+{}", self.offset)?;
        } else if self.offset < 0 {
            write!(f, "{}", self.offset)?;
        }
        Ok(())
    }
}

impl fmt::Debug for AffineSub {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AffineSub({self})")
    }
}

/// Shorthand for a plain one-variable subscript dimension `var`.
pub fn sub(var: &str) -> AffineSub {
    AffineSub::from_terms(&[(1, var)], 0)
}

/// Shorthand for a constant subscript dimension.
pub fn sub_const(k: i64) -> AffineSub {
    AffineSub::constant(k)
}

/// Shorthand for a general affine subscript dimension.
pub fn sub_affine(terms: &[(i64, &str)], offset: i64) -> AffineSub {
    AffineSub::from_terms(terms, offset)
}

/// Shorthand turning a slice of dimensions into the owned `Vec` the builder
/// APIs take.
pub fn subs(dims: &[AffineSub]) -> Vec<AffineSub> {
    dims.to_vec()
}

/// Resolves symbolic subscripts to the access matrix `H` (`rank × depth`)
/// and constant vector `c` against an ordered list of loop index names
/// (outermost first).
pub fn resolve(dims: &[AffineSub], loop_vars: &[&str]) -> (Mat, Vec<i64>) {
    let mut h = Mat::zeros(dims.len(), loop_vars.len());
    let mut c = Vec::with_capacity(dims.len());
    for (r, d) in dims.iter().enumerate() {
        for (var, coef) in d.terms() {
            if let Some(col) = loop_vars.iter().position(|&v| v == var) {
                h[(r, col)] = coef;
            }
            // Indices not bound by the nest (e.g. parameters) fold into the
            // constant conceptually; we treat them as zero here because the
            // builder rejects unbound names up front.
        }
        c.push(d.constant_part());
    }
    (h, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(sub("I").to_string(), "I");
        assert_eq!(sub("I").offset(2).to_string(), "I+2");
        assert_eq!(sub("I").offset(-2).to_string(), "I-2");
        assert_eq!(sub_const(4).to_string(), "4");
        assert_eq!(sub_affine(&[(2, "J")], -1).to_string(), "2J-1");
        assert_eq!(sub_affine(&[(-1, "I")], 0).to_string(), "-I");
        assert_eq!(sub_affine(&[(1, "I"), (1, "J")], 0).to_string(), "I+J");
    }

    #[test]
    fn zero_coefficients_are_dropped() {
        let s = sub_affine(&[(0, "I"), (2, "J"), (-2, "J")], 3);
        assert_eq!(s.num_vars(), 0);
        assert_eq!(s, sub_const(3));
    }

    #[test]
    fn shift_var_folds_into_offset() {
        let mut s = sub_affine(&[(3, "I")], 1);
        s.shift_var("I", 2);
        assert_eq!(s, sub_affine(&[(3, "I")], 7));
        s.shift_var("J", 5); // absent: no-op
        assert_eq!(s.constant_part(), 7);
    }

    #[test]
    fn eval_uses_environment() {
        let s = sub_affine(&[(2, "I"), (-1, "J")], 4);
        let mut env = BTreeMap::new();
        env.insert("I", 3);
        env.insert("J", 1);
        assert_eq!(s.eval(&env), 9);
    }

    #[test]
    fn resolve_builds_h_and_c() {
        let dims = [sub("I").offset(1), sub_affine(&[(2, "K")], -3)];
        let (h, c) = resolve(&dims, &["J", "I", "K"]);
        assert_eq!(h.row(0), &[0, 1, 0]);
        assert_eq!(h.row(1), &[0, 0, 2]);
        assert_eq!(c, vec![1, -3]);
    }
}
