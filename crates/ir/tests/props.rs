//! Property-style tests: transformation semantics and accounting
//! invariants.
//!
//! Triage note: originally `proptest`; the offline registry cannot serve
//! external crates, so the strategies are now deterministic seeded
//! generators from the in-tree `ujam-rng` crate with the same coverage.

use ujam_ir::interp::execute;
use ujam_ir::transform::{scalar_replacement, unroll_and_jam};
use ujam_ir::{LoopNest, NestBuilder};
use ujam_rng::Rng;

/// A random "stencil-ish" nest: 2-deep, one or two statements whose
/// references carry small constant offsets.  The LHS arrays are distinct
/// from the RHS arrays so that any unroll-and-jam is legal (no loop-carried
/// write conflicts), letting us test semantics preservation unconditionally.
fn stencil_nest(rng: &mut Rng) -> (LoopNest, u32) {
    let n_b = rng.int(1, 3);
    let n_c = rng.int(1, 3);
    let unroll = rng.int(1, 3) as u32;
    let mut rhs1 = String::from("0.0");
    for _ in 0..n_b {
        let di = rng.int(-2, 2);
        let dj = rng.int(-2, 2);
        rhs1.push_str(&format!(" + B(I+{}, J+{})", di + 2, dj + 2));
    }
    let mut rhs2 = String::from("1.0");
    for _ in 0..n_c {
        let di = rng.int(-2, 2);
        let dj = rng.int(-2, 2);
        rhs2.push_str(&format!(" + C(I+{}, J+{})", di + 2, dj + 2));
    }
    let nest = NestBuilder::new("prop")
        .array("X", &[32, 32])
        .array("Y", &[32, 32])
        .array("B", &[32, 32])
        .array("C", &[32, 32])
        .loop_("J", 1, 12)
        .loop_("I", 1, 6)
        .stmt(&format!("X(I,J) = {rhs1}"))
        .stmt(&format!("Y(I,J) = {rhs2}"))
        .build();
    (nest, unroll)
}

const CASES: usize = 64;

/// Runs `f` over the seeded case stream, skipping unrolls that don't
/// divide the outer trip count (the proptest version `prop_assume`d).
fn for_divisible_cases(seed: u64, mut f: impl FnMut(usize, &LoopNest, u32)) {
    let mut rng = Rng::new(seed);
    for case in 0..CASES {
        let (nest, u) = stencil_nest(&mut rng);
        let trip = nest.loops()[0].trip_count();
        if trip % (u as i64 + 1) != 0 {
            continue;
        }
        f(case, &nest, u);
    }
}

/// Unroll-and-jam of an independent-iteration nest never changes the
/// final memory image.
#[test]
fn unroll_and_jam_preserves_semantics() {
    for_divisible_cases(0x5e4a, |case, nest, u| {
        let t = unroll_and_jam(nest, &[u, 0]).expect("legal unroll");
        assert_eq!(execute(&t), execute(nest), "case {case}");
    });
}

/// Body size scales exactly with the number of copies.
#[test]
fn unroll_scales_body() {
    for_divisible_cases(0x5ca1e, |case, nest, u| {
        let t = unroll_and_jam(nest, &[u, 0]).expect("legal unroll");
        assert_eq!(t.body().len(), nest.body().len() * (u as usize + 1));
        assert_eq!(t.iterations() * (u as i64 + 1), nest.iterations());
        assert_eq!(
            t.flops_per_iter(),
            nest.flops_per_iter() * (u as usize + 1),
            "case {case}"
        );
    });
}

/// Scalar replacement accounting: every original load is kept, replaced,
/// or hoisted; every original store is kept or hoisted.
#[test]
fn replacement_accounts_for_every_reference() {
    for_divisible_cases(0xacc7, |case, nest, u| {
        let t = unroll_and_jam(nest, &[u, 0]).expect("legal unroll");
        let original_loads = t.refs().iter().filter(|r| !r.is_def).count();
        let original_stores = t.refs().iter().filter(|r| r.is_def).count();
        let r = scalar_replacement(&t);
        assert_eq!(
            r.stats.loads + r.stats.replaced_loads + r.stats.hoisted_loads,
            original_loads,
            "case {case}"
        );
        assert_eq!(r.stats.stores + r.stats.hoisted_stores, original_stores);
    });
}

/// The transformed body's direct counts agree with the reported stats,
/// and scalar replacement never *increases* memory operations.
#[test]
fn replacement_stats_match_body() {
    for_divisible_cases(0xb0d4, |case, nest, u| {
        let t = unroll_and_jam(nest, &[u, 0]).expect("legal unroll");
        let r = scalar_replacement(&t);
        let mut loads = 0;
        let mut stores = 0;
        for stmt in r.nest.body() {
            for (_, is_def) in stmt.refs() {
                if is_def {
                    stores += 1
                } else {
                    loads += 1
                }
            }
        }
        assert_eq!(loads, r.stats.loads, "case {case}");
        assert_eq!(stores, r.stats.stores);
        let before = t.refs().len();
        assert!(r.stats.memory_ops() <= before);
    });
}

/// Idempotence: running scalar replacement on already-replaced code finds
/// nothing further to replace.
#[test]
fn replacement_is_idempotent() {
    let mut rng = Rng::new(0x1de3);
    for _ in 0..CASES {
        let (nest, _u) = stencil_nest(&mut rng);
        let r1 = scalar_replacement(&nest);
        let r2 = scalar_replacement(&r1.nest);
        assert_eq!(r2.stats.replaced_loads, 0);
        assert_eq!(r2.stats.loads, r1.stats.loads);
        assert_eq!(r2.stats.stores, r1.stats.stores);
    }
}
