//! Property tests: transformation semantics and accounting invariants.

use proptest::prelude::*;
use ujam_ir::interp::execute;
use ujam_ir::transform::{scalar_replacement, unroll_and_jam};
use ujam_ir::{LoopNest, NestBuilder};

/// A random "stencil-ish" nest: 2-deep, one or two statements whose
/// references carry small constant offsets.  The LHS arrays are distinct
/// from the RHS arrays so that any unroll-and-jam is legal (no loop-carried
/// write conflicts), letting us test semantics preservation unconditionally.
fn stencil_nest() -> impl Strategy<Value = (LoopNest, u32)> {
    let off = -2i64..=2;
    (
        proptest::collection::vec((off.clone(), off.clone()), 1..=3),
        proptest::collection::vec((off.clone(), off), 1..=3),
        1u32..=3,
    )
        .prop_map(|(offs_b, offs_c, unroll)| {
            let mut rhs1 = String::from("0.0");
            for (di, dj) in &offs_b {
                rhs1.push_str(&format!(" + B(I+{}, J+{})", di + 2, dj + 2));
            }
            let mut rhs2 = String::from("1.0");
            for (di, dj) in &offs_c {
                rhs2.push_str(&format!(" + C(I+{}, J+{})", di + 2, dj + 2));
            }
            let nest = NestBuilder::new("prop")
                .array("X", &[32, 32])
                .array("Y", &[32, 32])
                .array("B", &[32, 32])
                .array("C", &[32, 32])
                .loop_("J", 1, 12)
                .loop_("I", 1, 6)
                .stmt(&format!("X(I,J) = {rhs1}"))
                .stmt(&format!("Y(I,J) = {rhs2}"))
                .build();
            (nest, unroll)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Unroll-and-jam of an independent-iteration nest never changes the
    /// final memory image.
    #[test]
    fn unroll_and_jam_preserves_semantics((nest, u) in stencil_nest()) {
        let trip = nest.loops()[0].trip_count();
        prop_assume!(trip % (u as i64 + 1) == 0);
        let t = unroll_and_jam(&nest, &[u, 0]).expect("legal unroll");
        prop_assert_eq!(execute(&t), execute(&nest));
    }

    /// Body size scales exactly with the number of copies.
    #[test]
    fn unroll_scales_body((nest, u) in stencil_nest()) {
        let trip = nest.loops()[0].trip_count();
        prop_assume!(trip % (u as i64 + 1) == 0);
        let t = unroll_and_jam(&nest, &[u, 0]).expect("legal unroll");
        prop_assert_eq!(t.body().len(), nest.body().len() * (u as usize + 1));
        prop_assert_eq!(t.iterations() * (u as i64 + 1), nest.iterations());
        prop_assert_eq!(
            t.flops_per_iter(),
            nest.flops_per_iter() * (u as usize + 1)
        );
    }

    /// Scalar replacement accounting: every original load is kept, replaced,
    /// or hoisted; every original store is kept or hoisted.
    #[test]
    fn replacement_accounts_for_every_reference((nest, u) in stencil_nest()) {
        let trip = nest.loops()[0].trip_count();
        prop_assume!(trip % (u as i64 + 1) == 0);
        let t = unroll_and_jam(&nest, &[u, 0]).expect("legal unroll");
        let original_loads = t.refs().iter().filter(|r| !r.is_def).count();
        let original_stores = t.refs().iter().filter(|r| r.is_def).count();
        let r = scalar_replacement(&t);
        prop_assert_eq!(
            r.stats.loads + r.stats.replaced_loads + r.stats.hoisted_loads,
            original_loads
        );
        prop_assert_eq!(r.stats.stores + r.stats.hoisted_stores, original_stores);
    }

    /// The transformed body's direct counts agree with the reported stats,
    /// and scalar replacement never *increases* memory operations.
    #[test]
    fn replacement_stats_match_body((nest, u) in stencil_nest()) {
        let trip = nest.loops()[0].trip_count();
        prop_assume!(trip % (u as i64 + 1) == 0);
        let t = unroll_and_jam(&nest, &[u, 0]).expect("legal unroll");
        let r = scalar_replacement(&t);
        let mut loads = 0;
        let mut stores = 0;
        for stmt in r.nest.body() {
            for (_, is_def) in stmt.refs() {
                if is_def { stores += 1 } else { loads += 1 }
            }
        }
        prop_assert_eq!(loads, r.stats.loads);
        prop_assert_eq!(stores, r.stats.stores);
        let before = t.refs().len();
        prop_assert!(r.stats.memory_ops() <= before);
    }

    /// Idempotence: running scalar replacement on already-replaced code
    /// finds nothing further to replace.
    #[test]
    fn replacement_is_idempotent((nest, _u) in stencil_nest()) {
        let r1 = scalar_replacement(&nest);
        let r2 = scalar_replacement(&r1.nest);
        prop_assert_eq!(r2.stats.replaced_loads, 0);
        prop_assert_eq!(r2.stats.loads, r1.stats.loads);
        prop_assert_eq!(r2.stats.stores, r1.stats.stores);
    }
}
