//! The dependence graph, with the storage accounting of Table 1.

use crate::dist::{lex_positive_realizable, Dist, DistVec};
use crate::tests_impl::pairwise_distance;
use std::fmt;
use ujam_ir::{LoopNest, RefId};

/// Dependence classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Flow (read-after-write).
    True,
    /// Anti (write-after-read).
    Anti,
    /// Output (write-after-write).
    Output,
    /// Input (read-after-read) — needed *only* for memory-reuse analysis;
    /// the paper's contribution is making these unnecessary.
    Input,
}

impl DepKind {
    fn classify(src_is_def: bool, dst_is_def: bool) -> DepKind {
        match (src_is_def, dst_is_def) {
            (true, false) => DepKind::True,
            (false, true) => DepKind::Anti,
            (true, true) => DepKind::Output,
            (false, false) => DepKind::Input,
        }
    }
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DepKind::True => "true",
            DepKind::Anti => "anti",
            DepKind::Output => "output",
            DepKind::Input => "input",
        };
        write!(f, "{s}")
    }
}

/// One dependence edge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DepEdge {
    /// Source reference.
    pub src: RefId,
    /// Sink reference.
    pub dst: RefId,
    /// Dependence class.
    pub kind: DepKind,
    /// Distance vector, outermost loop first.
    pub dist: DistVec,
}

/// Summary statistics over a dependence graph (the quantities of §5.1).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GraphStats {
    /// Total number of dependences.
    pub total: usize,
    /// Number of input dependences.
    pub input: usize,
    /// Bytes to store every edge.
    pub bytes_all: usize,
    /// Bytes to store only the true/anti/output edges (the UGS approach).
    pub bytes_no_input: usize,
}

impl GraphStats {
    /// Fraction of dependences that are input dependences (0 when empty).
    pub fn input_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.input as f64 / self.total as f64
        }
    }
}

/// Walks an expression, reporting every scalar name read.
fn collect_scalars(e: &ujam_ir::Expr, f: &mut impl FnMut(&str)) {
    match e {
        ujam_ir::Expr::Scalar(name) => f(name),
        ujam_ir::Expr::Ref(_) | ujam_ir::Expr::Const(_) => {}
        ujam_ir::Expr::Bin(_, l, r) => {
            collect_scalars(l, f);
            collect_scalars(r, f);
        }
        ujam_ir::Expr::Neg(inner) => collect_scalars(inner, f),
    }
}

/// A loop nest's dependence graph.
///
/// Construction enumerates every same-array reference pair (including
/// read–read pairs and self-pairs), tests them with
/// [`pairwise_distance`], and materialises each realizable direction as an
/// edge with a normalized (lexicographically non-negative) distance vector.
#[derive(Clone, Debug, Default)]
pub struct DepGraph {
    edges: Vec<DepEdge>,
    depth: usize,
}

impl DepGraph {
    /// Builds the dependence graph of a nest.
    pub fn build(nest: &LoopNest) -> DepGraph {
        let vars = nest.loop_vars();
        let trips: Vec<i64> = nest.loops().iter().map(|l| l.trip_count()).collect();
        let refs = nest.refs();
        let mut edges = Vec::new();

        for i in 0..refs.len() {
            for j in i..refs.len() {
                let (a, b) = (&refs[i], &refs[j]);
                let Some(dist) = pairwise_distance(&a.aref, &b.aref, &vars) else {
                    continue;
                };
                if i == j {
                    // Self pair: a dependence only if a non-zero (hence, by
                    // symmetry, a positive) distance is realizable.
                    let (pos, _zero) = lex_positive_realizable(&dist, &trips);
                    if pos {
                        edges.push(DepEdge {
                            src: a.id,
                            dst: b.id,
                            kind: DepKind::classify(a.is_def, b.is_def),
                            dist: dist.clone(),
                        });
                    }
                    continue;
                }
                // Forward direction (textual order a before b).
                let (pos, zero) = lex_positive_realizable(&dist, &trips);
                if pos || zero {
                    edges.push(DepEdge {
                        src: a.id,
                        dst: b.id,
                        kind: DepKind::classify(a.is_def, b.is_def),
                        dist: dist.clone(),
                    });
                }
                // Reverse direction: realizable only when carried (a
                // loop-independent dependence cannot run against textual
                // order).
                let rev: DistVec = dist.iter().map(|d| d.negate()).collect();
                let (pos, _zero) = lex_positive_realizable(&rev, &trips);
                if pos {
                    edges.push(DepEdge {
                        src: b.id,
                        dst: a.id,
                        kind: DepKind::classify(b.is_def, a.is_def),
                        dist: rev,
                    });
                }
            }
        }
        // Scalar accesses (accumulators like `s = s + X(I)`): every
        // def/use pair of the same name is a dependence whose distance is
        // unconstrained in every loop — the scalar names one storage cell
        // shared by the entire iteration space.  These edges keep the
        // safety analysis from jamming across a scalar recurrence and let
        // the scheduler see the recurrence latency; they use synthetic
        // positions after the statement's array references.
        let all_any: DistVec = vec![Dist::Any; nest.depth()];
        let mut scalar_accesses: Vec<(RefId, String, bool)> = Vec::new();
        for (s, stmt) in nest.body().iter().enumerate() {
            let base = stmt.refs().len();
            let mut ord = 0usize;
            collect_scalars(stmt.rhs(), &mut |name| {
                scalar_accesses.push((
                    RefId {
                        stmt: s,
                        pos: base + ord,
                    },
                    name.to_string(),
                    false,
                ));
                ord += 1;
            });
            if let ujam_ir::Lhs::Scalar(name) = stmt.lhs() {
                scalar_accesses.push((
                    RefId {
                        stmt: s,
                        pos: base + ord,
                    },
                    name.clone(),
                    true,
                ));
            }
        }
        for i in 0..scalar_accesses.len() {
            for j in i..scalar_accesses.len() {
                let (a_id, a_name, a_def) = &scalar_accesses[i];
                let (b_id, b_name, b_def) = &scalar_accesses[j];
                if a_name != b_name || (!*a_def && !*b_def) {
                    continue; // read-read scalar pairs impose nothing
                }
                if i == j {
                    continue; // a lone access is not a dependence
                }
                edges.push(DepEdge {
                    src: *a_id,
                    dst: *b_id,
                    kind: DepKind::classify(*a_def, *b_def),
                    dist: all_any.clone(),
                });
                edges.push(DepEdge {
                    src: *b_id,
                    dst: *a_id,
                    kind: DepKind::classify(*b_def, *a_def),
                    dist: all_any.clone(),
                });
            }
        }

        DepGraph {
            edges,
            depth: nest.depth(),
        }
    }

    /// All edges.
    pub fn edges(&self) -> &[DepEdge] {
        &self.edges
    }

    /// Edges of one class.
    pub fn edges_of(&self, kind: DepKind) -> impl Iterator<Item = &DepEdge> {
        self.edges.iter().filter(move |e| e.kind == kind)
    }

    /// Number of edges of one class.
    pub fn count(&self, kind: DepKind) -> usize {
        self.edges_of(kind).count()
    }

    /// Total number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// `true` when the nest has no dependences at all.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Bytes needed to store `n` edges of this graph's shape.
    ///
    /// Models a compact serialized edge: two 8-byte reference ids, a 1-byte
    /// kind tag, and a 9-byte (tag + payload) slot per distance component —
    /// the same shape whether or not input dependences are kept, which makes
    /// the Table 1 comparison a pure edge-count ratio scaled to bytes.
    fn bytes_for(&self, n: usize) -> usize {
        n * (8 + 8 + 1 + 9 * self.depth)
    }

    /// The §5.1 statistics for this graph.
    pub fn stats(&self) -> GraphStats {
        let input = self.count(DepKind::Input);
        GraphStats {
            total: self.len(),
            input,
            bytes_all: self.bytes_for(self.len()),
            bytes_no_input: self.bytes_for(self.len() - input),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Dist;
    use ujam_ir::NestBuilder;

    fn intro() -> ujam_ir::LoopNest {
        NestBuilder::new("intro")
            .array("A", &[64])
            .array("B", &[64])
            .loop_("J", 1, 64)
            .loop_("I", 1, 64)
            .stmt("A(J) = A(J) + B(I)")
            .build()
    }

    #[test]
    fn intro_loop_has_all_four_classes() {
        let g = DepGraph::build(&intro());
        assert_eq!(g.count(DepKind::True), 1, "def A(J) -> use A(J)");
        assert_eq!(g.count(DepKind::Anti), 1, "use A(J) -> def A(J)");
        assert_eq!(g.count(DepKind::Output), 1, "def A(J) self");
        // Inputs: use A(J) self (carried by I) and B(I) self (carried by J).
        assert_eq!(g.count(DepKind::Input), 2);
        assert_eq!(g.len(), 5);
    }

    #[test]
    fn stats_count_input_savings() {
        let g = DepGraph::build(&intro());
        let s = g.stats();
        assert_eq!(s.total, 5);
        assert_eq!(s.input, 2);
        assert!((s.input_fraction() - 0.4).abs() < 1e-12);
        assert!(s.bytes_no_input < s.bytes_all);
        assert_eq!(
            s.bytes_all / s.total,
            s.bytes_no_input / (s.total - s.input)
        );
    }

    #[test]
    fn flow_dependence_distance_is_positive() {
        // A(I) = A(I-1): flow dep with distance 1 carried by I.
        let nest = NestBuilder::new("rec")
            .array("A", &[64])
            .loop_("I", 2, 33)
            .stmt("A(I) = A(I-1) * 0.5")
            .build();
        let g = DepGraph::build(&nest);
        let flow: Vec<_> = g.edges_of(DepKind::True).collect();
        assert_eq!(flow.len(), 1);
        assert_eq!(flow[0].dist, vec![Dist::Exact(1)]);
    }

    #[test]
    fn independent_references_produce_no_edges() {
        let nest = NestBuilder::new("indep")
            .array("A", &[64])
            .array("B", &[64])
            .loop_("I", 1, 32)
            .stmt("A(I) = B(I) + 1.0")
            .build();
        let g = DepGraph::build(&nest);
        // A(I) def self: distance 0 only -> no edge.  B(I) use self: same.
        // A vs B: different arrays.
        assert!(g.is_empty());
    }

    #[test]
    fn group_input_dependence_between_stencil_reads() {
        let nest = NestBuilder::new("st")
            .array("A", &[64])
            .array("B", &[64])
            .loop_("I", 2, 33)
            .stmt("B(I) = A(I) + A(I-1)")
            .build();
        let g = DepGraph::build(&nest);
        // A(I) at iter i is re-read by A(I-1) at iter i+1.
        let inputs: Vec<_> = g.edges_of(DepKind::Input).collect();
        assert_eq!(inputs.len(), 1);
        assert_eq!(inputs[0].dist, vec![Dist::Exact(1)]);
    }

    #[test]
    fn loop_independent_edge_respects_textual_order() {
        let nest = NestBuilder::new("li")
            .array("A", &[64])
            .array("B", &[64])
            .loop_("I", 1, 32)
            .stmt("A(I) = B(I) * 2.0")
            .stmt("B(I) = A(I) + 1.0")
            .build();
        let g = DepGraph::build(&nest);
        // A: def (stmt0) then use (stmt1): loop-independent flow dep.
        let flows: Vec<_> = g.edges_of(DepKind::True).collect();
        assert!(flows
            .iter()
            .any(|e| e.src.stmt == 0 && e.dst.stmt == 1 && e.dist == vec![Dist::Exact(0)]));
        // B: use (stmt0) then def (stmt1): loop-independent anti dep.
        assert!(g
            .edges_of(DepKind::Anti)
            .any(|e| e.src.stmt == 0 && e.dst.stmt == 1));
    }

    #[test]
    fn distances_out_of_bounds_are_dropped() {
        // Offset 40 exceeds the trip count 8: no dependence.
        let nest = NestBuilder::new("oob")
            .array("A", &[128])
            .loop_("I", 41, 48)
            .stmt("A(I) = A(I-40) + 1.0")
            .build();
        let g = DepGraph::build(&nest);
        assert_eq!(g.count(DepKind::True), 0);
    }
}

impl DepGraph {
    /// Renders the graph in Graphviz DOT form: nodes are references
    /// (`s<stmt>r<pos>`), edges are labelled with kind and distance
    /// vector, input dependences drawn dashed (the edges the UGS model
    /// makes unnecessary).
    pub fn to_dot(&self, nest: &ujam_ir::LoopNest) -> String {
        use std::fmt::Write;
        let refs = nest.refs();
        let mut out = String::from("digraph deps {\n  rankdir=LR;\n");
        for r in &refs {
            let shape = if r.is_def { "box" } else { "ellipse" };
            let _ = writeln!(
                out,
                "  s{}r{} [label=\"{}\" shape={shape}];",
                r.id.stmt, r.id.pos, r.aref
            );
        }
        for e in &self.edges {
            let dist: Vec<String> = e.dist.iter().map(|d| d.to_string()).collect();
            let style = if e.kind == DepKind::Input {
                " style=dashed"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  s{}r{} -> s{}r{} [label=\"{} ({})\"{style}];",
                e.src.stmt,
                e.src.pos,
                e.dst.stmt,
                e.dst.pos,
                e.kind,
                dist.join(",")
            );
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod dot_tests {
    use super::*;
    use ujam_ir::NestBuilder;

    #[test]
    fn dot_output_contains_every_edge_and_node() {
        let nest = NestBuilder::new("intro")
            .array("A", &[64])
            .array("B", &[64])
            .loop_("J", 1, 64)
            .loop_("I", 1, 64)
            .stmt("A(J) = A(J) + B(I)")
            .build();
        let g = DepGraph::build(&nest);
        let dot = g.to_dot(&nest);
        assert!(dot.starts_with("digraph deps {"));
        assert_eq!(dot.matches("->").count(), g.len());
        assert!(dot.contains("style=dashed"), "input deps are dashed");
        assert!(dot.contains("shape=box"), "defs are boxes");
        assert!(dot.ends_with("}\n"));
    }
}

#[cfg(test)]
mod scalar_dep_tests {
    use super::*;
    use crate::safety::safe_unroll_bounds;
    use ujam_ir::NestBuilder;

    #[test]
    fn scalar_accumulator_blocks_jamming() {
        // A dot product: jamming J would interleave updates of `s` across
        // J-groups — exact floating-point semantics change.
        let nest = NestBuilder::new("dot")
            .array("X", &[66, 66])
            .array("Y", &[66, 66])
            .loop_("J", 1, 64)
            .loop_("I", 1, 64)
            .stmt("s = s + X(I,J) * Y(I,J)")
            .build();
        let g = DepGraph::build(&nest);
        assert!(g.edges().iter().any(|e| e.kind == DepKind::True));
        assert_eq!(safe_unroll_bounds(&nest, &g)[0], 0);
    }

    #[test]
    fn invariant_scalar_reads_impose_nothing() {
        // shal-style weights: scalar uses without defs are free.
        let nest = NestBuilder::new("w")
            .array("A", &[66, 66])
            .array("B", &[66, 66])
            .loop_("J", 1, 64)
            .loop_("I", 1, 64)
            .stmt("A(I,J) = tdts8 * B(I,J)")
            .build();
        let g = DepGraph::build(&nest);
        let scalar_edges = g
            .edges()
            .iter()
            .filter(|e| e.src.pos >= 3 || e.dst.pos >= 3)
            .count();
        assert_eq!(scalar_edges, 0);
        assert!(safe_unroll_bounds(&nest, &g)[0] > 0);
    }

    #[test]
    fn scalar_chain_between_statements_is_tracked() {
        let nest = NestBuilder::new("chain")
            .array("A", &[66])
            .array("B", &[66])
            .loop_("I", 1, 64)
            .stmt("t = A(I) * 2.0")
            .stmt("B(I) = t + 1.0")
            .build();
        let g = DepGraph::build(&nest);
        // def t (stmt 0) -> use t (stmt 1): a flow dependence.
        assert!(g
            .edges_of(DepKind::True)
            .any(|e| e.src.stmt == 0 && e.dst.stmt == 1));
    }
}
