//! Unroll-and-jam legality bounds.
//!
//! Unroll-and-jam is strip-mine-and-interchange: unrolling loop `l` by `u`
//! moves `u + 1` consecutive `l`-iterations into the same innermost
//! iteration.  A dependence is *violated* when its source and sink land in
//! the same jammed iteration group in the wrong order — which happens
//! exactly when there is a dependence whose distance vector has zeros on
//! the loops outside `l`'s prefix, a component `k` with `1 ≤ k ≤ u` on `l`,
//! and a lexicographically *negative* suffix below `l` (Callahan, Cocke &
//! Kennedy).  The safe bound for `l` is therefore `min(k) − 1` over all such
//! "interchange-preventing" dependences.

use crate::dist::Dist;
use crate::graph::{DepGraph, DepKind};
use ujam_ir::LoopNest;

/// Cap applied to unroll bounds when no dependence limits them; also the
/// default bound of the unroll search space `%` (§4.1).
pub const UNROLL_CAP: u32 = 16;

/// Computes the maximum safe unroll amount for every loop of the nest.
///
/// The innermost loop's entry is always `0` (unroll-and-jam never unrolls
/// it).  Unconstrained loops are capped at [`UNROLL_CAP`].  Input
/// dependences never constrain legality and are ignored.
///
/// # Example
///
/// ```
/// use ujam_ir::NestBuilder;
/// use ujam_dep::{safe_unroll_bounds, DepGraph, UNROLL_CAP};
///
/// let nest = NestBuilder::new("wave")
///     .array("A", &[64, 64])
///     .loop_("J", 2, 33)
///     .loop_("I", 2, 33)
///     .stmt("A(I,J) = A(I+1,J-1) * 0.5")
///     .build();
/// let g = DepGraph::build(&nest);
/// // The (1, -1) anti-direction dependence forbids jamming J at all.
/// assert_eq!(safe_unroll_bounds(&nest, &g), vec![0, 0]);
/// ```
pub fn safe_unroll_bounds(nest: &LoopNest, graph: &DepGraph) -> Vec<u32> {
    let depth = nest.depth();
    let trips: Vec<i64> = nest.loops().iter().map(|l| l.trip_count()).collect();
    let mut bounds = vec![UNROLL_CAP; depth];
    if depth > 0 {
        bounds[depth - 1] = 0;
    }

    for edge in graph.edges() {
        if edge.kind == DepKind::Input {
            continue;
        }
        for l in 0..depth.saturating_sub(1) {
            // Prefix above `l` must admit all-zero for the dependence to
            // stay within one jammed group of outer iterations.
            if !edge.dist[..l].iter().all(|d| d.can_be_zero()) {
                continue;
            }
            // Suffix below `l` must admit a lexicographically negative
            // value for the jam to reverse the dependence.
            if !can_be_lex_negative(&edge.dist[l + 1..], &trips[l + 1..]) {
                continue;
            }
            let limit = match edge.dist[l] {
                // Carried by `l` at exact distance k: unrolling by k or
                // more puts source and sink in the same group.
                Dist::Exact(k) if k >= 1 => (k - 1).min(UNROLL_CAP as i64) as u32,
                Dist::Exact(_) => continue,
                // Unconstrained distance: any unrolling is unsafe.
                Dist::Any => 0,
            };
            bounds[l] = bounds[l].min(limit);
        }
    }
    bounds
}

/// Whether the constraint suffix admits a lexicographically negative value.
fn can_be_lex_negative(dist: &[Dist], trips: &[i64]) -> bool {
    for (&d, &trip) in dist.iter().zip(trips) {
        match d {
            Dist::Any => return trip > 1,
            Dist::Exact(k) if k < 0 => return true,
            Dist::Exact(0) => continue,
            Dist::Exact(_) => return false,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use ujam_ir::interp::execute;
    use ujam_ir::transform::unroll_and_jam;
    use ujam_ir::NestBuilder;

    #[test]
    fn independent_nest_is_unconstrained() {
        let nest = NestBuilder::new("free")
            .array("A", &[64, 64])
            .array("B", &[64, 64])
            .loop_("J", 1, 32)
            .loop_("I", 1, 32)
            .stmt("A(I,J) = B(I,J) + 1.0")
            .build();
        let g = DepGraph::build(&nest);
        assert_eq!(safe_unroll_bounds(&nest, &g), vec![UNROLL_CAP, 0]);
    }

    #[test]
    fn forward_wave_allows_jam() {
        // A(I,J) = A(I-1,J-1): distance (1,1); suffix positive, never
        // reversed by jamming J.
        let nest = NestBuilder::new("fw")
            .array("A", &[64, 64])
            .loop_("J", 2, 33)
            .loop_("I", 2, 33)
            .stmt("A(I,J) = A(I-1,J-1) * 0.5")
            .build();
        let g = DepGraph::build(&nest);
        assert_eq!(safe_unroll_bounds(&nest, &g)[0], UNROLL_CAP);
    }

    #[test]
    fn backward_wave_with_distance_limits_unroll() {
        // A(I,J) = A(I+1,J-2): distance (2,-1): unrolling J by 2+ is
        // illegal, by 1 is fine.
        let nest = NestBuilder::new("bw")
            .array("A", &[64, 64])
            .loop_("J", 3, 34)
            .loop_("I", 2, 33)
            .stmt("A(I,J) = A(I+1,J-2) * 0.5")
            .build();
        let g = DepGraph::build(&nest);
        assert_eq!(safe_unroll_bounds(&nest, &g)[0], 1);
    }

    #[test]
    fn safety_bound_matches_interpreter() {
        // The nest above: unroll within the bound preserves semantics.
        let nest = NestBuilder::new("bw")
            .array("A", &[64, 64])
            .loop_("J", 3, 34)
            .loop_("I", 2, 33)
            .stmt("A(I,J) = A(I+1,J-2) * 0.5")
            .build();
        let orig = execute(&nest);
        let t = unroll_and_jam(&nest, &[1, 0]).unwrap();
        assert_eq!(execute(&t), orig, "legal unroll must preserve semantics");
        // Beyond the bound the transform *does* change semantics,
        // demonstrating the bound is tight.
        let t2 = unroll_and_jam(&nest, &[3, 0]).unwrap();
        assert_ne!(execute(&t2), orig, "illegal unroll should break");
    }

    #[test]
    fn input_dependences_do_not_constrain() {
        // Reads in a "backward" pattern impose nothing.
        let nest = NestBuilder::new("reads")
            .array("A", &[64, 64])
            .array("B", &[64, 64])
            .loop_("J", 2, 33)
            .loop_("I", 2, 33)
            .stmt("B(I,J) = A(I+1,J-1) + A(I-1,J+1)")
            .build();
        let g = DepGraph::build(&nest);
        assert_eq!(safe_unroll_bounds(&nest, &g)[0], UNROLL_CAP);
    }

    #[test]
    fn reduction_is_jammable() {
        // A(J) = A(J) + B(I): flow/anti/output deps carried by I with J
        // distance 0; jamming J is safe.
        let nest = NestBuilder::new("intro")
            .array("A", &[64])
            .array("B", &[64])
            .loop_("J", 1, 64)
            .loop_("I", 1, 64)
            .stmt("A(J) = A(J) + B(I)")
            .build();
        let g = DepGraph::build(&nest);
        assert_eq!(safe_unroll_bounds(&nest, &g)[0], UNROLL_CAP);
    }
}
