//! Per-pair dependence testing (the "practical dependence testing" suite of
//! Goff, Kennedy & Tseng, restricted to what affine nests need).
//!
//! Given two references to the same array, each subscript dimension is
//! classified and tested:
//!
//! * **ZIV** (no induction variable): constants must match, else the pair is
//!   independent;
//! * **strong SIV** (same variable, same coefficient): exact distance
//!   `(c1 − c2) / a`, independent if fractional or out of loop bounds;
//! * **weak SIV / crossing** (same variable, different coefficients, or the
//!   variable appears on one side only): solvability is checked with a GCD
//!   argument and the loop's distance is left unconstrained (`*`);
//! * **MIV** (several variables in one dimension): a GCD test over all
//!   coefficients; involved loops are left unconstrained.
//!
//! Per-dimension constraints are intersected across dimensions; a conflict
//! anywhere proves independence.

use crate::dist::{Dist, DistVec};
use ujam_ir::ArrayRef;

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Computes the per-loop distance constraints under which `a` and `b` access
/// the same element, or `None` if they are proven independent.
///
/// `loop_vars` lists the nest's induction variables outermost first; the
/// returned vector is parallel to it.  Distances are from `a`'s iteration to
/// `b`'s: element touched by `b` at iteration `i` equals the element touched
/// by `a` at iteration `i − d`.
///
/// # Example
///
/// ```
/// use ujam_ir::{ArrayRef, sub, subs};
/// use ujam_dep::{pairwise_distance, Dist};
/// let w = ArrayRef::new("A", subs(&[sub("I")]));
/// let r = ArrayRef::new("A", subs(&[sub("I").offset(-1)]));
/// // A(I) at iteration i is read by A(I-1) at iteration i+1: distance 1.
/// let d = pairwise_distance(&w, &r, &["J", "I"]).unwrap();
/// // J appears in neither reference, so its component is unconstrained.
/// assert_eq!(d, vec![Dist::Any, Dist::Exact(1)]);
/// ```
pub fn pairwise_distance(a: &ArrayRef, b: &ArrayRef, loop_vars: &[&str]) -> Option<DistVec> {
    if a.array() != b.array() || a.dims().len() != b.dims().len() {
        return None;
    }
    let mut dist: DistVec = vec![Dist::Any; loop_vars.len()];
    for (da, db) in a.dims().iter().zip(b.dims()) {
        let constraint = test_dimension(da, db, loop_vars)?;
        for (slot, c) in dist.iter_mut().zip(constraint) {
            *slot = slot.meet(c)?;
        }
    }
    Some(dist)
}

/// Tests one subscript dimension pair, yielding per-loop constraints.
fn test_dimension(
    da: &ujam_ir::AffineSub,
    db: &ujam_ir::AffineSub,
    loop_vars: &[&str],
) -> Option<DistVec> {
    let coefs: Vec<(i64, i64)> = loop_vars.iter().map(|v| (da.coef(v), db.coef(v))).collect();
    let delta = db.constant_part() - da.constant_part();
    let involved: Vec<usize> = (0..loop_vars.len())
        .filter(|&i| coefs[i].0 != 0 || coefs[i].1 != 0)
        .collect();

    // ZIV: no induction variable on either side.
    if involved.is_empty() {
        return (delta == 0).then(|| vec![Dist::Any; loop_vars.len()]);
    }

    let mut out = vec![Dist::Any; loop_vars.len()];
    if involved.len() == 1 {
        let l = involved[0];
        let (ca, cb) = coefs[l];
        if ca == cb {
            // Strong SIV: a·i_a + c_a = a·i_b + c_b  =>  i_a − i_b = Δc / a
            // with Δc = c_b − c_a as computed above; d is from a to b:
            // b at iteration i touches what a touched at i − d, i.e.
            // a·(i − d) + c_a = a·i + c_b  =>  d = −Δc / a ... solve:
            // a·i_a + c_a = a·i_b + c_b with d = i_b − i_a = −Δc/a? Check:
            // a·i_a + c_a = a·i_b + c_b => a(i_a − i_b) = Δc => i_b − i_a =
            // −Δc/a.
            if delta % ca != 0 {
                return None;
            }
            out[l] = Dist::Exact(-delta / ca);
        } else {
            // Weak SIV (zero / crossing / general): solvable iff
            // gcd(ca, cb) divides Δc (with the one-sided case demanding
            // divisibility by the present coefficient).
            let g = gcd(ca, cb);
            if g != 0 && delta % g != 0 {
                return None;
            }
            // Distance varies with the iteration: unconstrained.
            out[l] = Dist::Any;
        }
        return Some(out);
    }

    // MIV: GCD test over every coefficient of both references.
    let mut g = 0;
    for &i in &involved {
        g = gcd(g, coefs[i].0);
        g = gcd(g, coefs[i].1);
    }
    if g != 0 && delta % g != 0 {
        return None;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ujam_ir::{sub, sub_affine, sub_const, subs, ArrayRef};

    const VARS: [&str; 2] = ["J", "I"];

    fn r1(dim: ujam_ir::AffineSub) -> ArrayRef {
        ArrayRef::new("A", subs(&[dim]))
    }

    #[test]
    fn strong_siv_exact_distance() {
        let a = r1(sub("I"));
        let b = r1(sub("I").offset(-2));
        // A(I-2) at iteration i touches element i-2, touched by A(I) at
        // iteration i-2: distance from a to b is +2.
        assert_eq!(
            pairwise_distance(&a, &b, &VARS).unwrap(),
            vec![Dist::Any, Dist::Exact(2)]
        );
        // And the reverse is −2.
        assert_eq!(
            pairwise_distance(&b, &a, &VARS).unwrap(),
            vec![Dist::Any, Dist::Exact(-2)]
        );
    }

    #[test]
    fn strong_siv_fractional_is_independent() {
        let a = r1(sub_affine(&[(2, "I")], 0));
        let b = r1(sub_affine(&[(2, "I")], -1));
        assert_eq!(pairwise_distance(&a, &b, &VARS), None);
        let c = r1(sub_affine(&[(2, "I")], -4));
        assert_eq!(pairwise_distance(&a, &c, &VARS).unwrap()[1], Dist::Exact(2));
    }

    #[test]
    fn ziv_dimension() {
        let a = ArrayRef::new("A", subs(&[sub("I"), sub_const(1)]));
        let b = ArrayRef::new("A", subs(&[sub("I"), sub_const(2)]));
        assert_eq!(pairwise_distance(&a, &b, &VARS), None);
        let c = ArrayRef::new("A", subs(&[sub("I"), sub_const(1)]));
        assert!(pairwise_distance(&a, &c, &VARS).is_some());
    }

    #[test]
    fn weak_siv_unconstrained_when_solvable() {
        // A(2I) vs A(I): intersects at even elements; distance varies.
        let a = r1(sub_affine(&[(2, "I")], 0));
        let b = r1(sub("I"));
        assert_eq!(
            pairwise_distance(&a, &b, &VARS).unwrap(),
            vec![Dist::Any, Dist::Any]
        );
    }

    #[test]
    fn one_sided_variable() {
        // A(I) vs A(4): a single interior iteration collides; kept as Any.
        let a = r1(sub("I"));
        let b = r1(sub_const(4));
        assert_eq!(pairwise_distance(&a, &b, &VARS).unwrap()[1], Dist::Any);
    }

    #[test]
    fn miv_gcd_rejects() {
        // A(2I + 2J) vs A(2I + 2J + 1): parity never matches.
        let a = r1(sub_affine(&[(2, "I"), (2, "J")], 0));
        let b = r1(sub_affine(&[(2, "I"), (2, "J")], 1));
        assert_eq!(pairwise_distance(&a, &b, &VARS), None);
        let c = r1(sub_affine(&[(2, "I"), (2, "J")], 2));
        assert!(pairwise_distance(&a, &c, &VARS).is_some());
    }

    #[test]
    fn different_arrays_never_depend() {
        let a = ArrayRef::new("A", subs(&[sub("I")]));
        let b = ArrayRef::new("B", subs(&[sub("I")]));
        assert_eq!(pairwise_distance(&a, &b, &VARS), None);
    }

    #[test]
    fn multidim_constraints_intersect() {
        let a = ArrayRef::new("A", subs(&[sub("I"), sub("J")]));
        let b = ArrayRef::new("A", subs(&[sub("I").offset(-1), sub("J").offset(-2)]));
        assert_eq!(
            pairwise_distance(&a, &b, &VARS).unwrap(),
            vec![Dist::Exact(2), Dist::Exact(1)]
        );
    }

    #[test]
    fn conflicting_dimensions_prove_independence() {
        // Same variable constrained to two different distances.
        let a = ArrayRef::new("A", subs(&[sub("I"), sub("I")]));
        let b = ArrayRef::new("A", subs(&[sub("I").offset(-1), sub("I").offset(-2)]));
        assert_eq!(pairwise_distance(&a, &b, &VARS), None);
    }

    #[test]
    fn invariant_ref_is_any_on_unused_loops() {
        let a = r1(sub("I"));
        let d = pairwise_distance(&a, &a, &VARS).unwrap();
        assert_eq!(d, vec![Dist::Any, Dist::Exact(0)]);
    }
}
