//! Loop-permutation legality.
//!
//! A permutation of a nest's loops is legal iff every data dependence's
//! distance vector remains lexicographically non-negative after
//! reordering — otherwise some sink would execute before its source.
//! Input dependences impose nothing.
//!
//! Edges store constraint vectors whose unconstrained (`*`) components
//! stand for *any* value, but the edge's direction already restricts its
//! realizations to lexicographically non-negative vectors in the original
//! order.  Legality therefore quantifies over realizations: the
//! permutation is illegal iff some realization that is non-negative in the
//! original order becomes negative in the new order.  Lexicographic sign
//! only depends on each component's sign, so enumerating `{-1, 0, 1}` for
//! every `*` component decides this exactly.

use crate::dist::Dist;
use crate::graph::{DepGraph, DepKind};

/// `true` if reordering the loops by `perm` (where `perm[k]` is the
/// original position of the loop placed at depth `k`) preserves every
/// data dependence.
///
/// # Panics
///
/// Panics if `perm`'s length differs from an edge's distance-vector
/// length.
///
/// # Example
///
/// ```
/// use ujam_ir::NestBuilder;
/// use ujam_dep::{legal_permutation, DepGraph};
/// // A(I,J) = A(I-1,J+1): distance (J:1, I:-1) forbids interchange.
/// let nest = NestBuilder::new("skew")
///     .array("A", &[66, 66])
///     .loop_("J", 2, 33).loop_("I", 2, 33)
///     .stmt("A(I,J) = A(I-1,J+1) * 0.5")
///     .build();
/// let g = DepGraph::build(&nest);
/// assert!(legal_permutation(&g, &[0, 1]));
/// assert!(!legal_permutation(&g, &[1, 0]));
/// ```
pub fn legal_permutation(graph: &DepGraph, perm: &[usize]) -> bool {
    graph.edges().iter().all(|e| {
        if e.kind == DepKind::Input {
            return true;
        }
        assert_eq!(e.dist.len(), perm.len(), "permutation arity mismatch");
        !violation_exists(&e.dist, perm, &mut vec![0i64; perm.len()], 0)
    })
}

/// Depth-first enumeration of representative realizations: `true` if some
/// realization is lex-non-negative in original order but lex-negative
/// after the permutation.
fn violation_exists(dist: &[Dist], perm: &[usize], real: &mut Vec<i64>, k: usize) -> bool {
    if k == dist.len() {
        return lex_sign(real.iter().copied()) >= 0 && lex_sign(perm.iter().map(|&p| real[p])) < 0;
    }
    match dist[k] {
        Dist::Exact(v) => {
            real[k] = v;
            violation_exists(dist, perm, real, k + 1)
        }
        Dist::Any => [-1i64, 0, 1].iter().any(|&v| {
            real[k] = v;
            violation_exists(dist, perm, real, k + 1)
        }),
    }
}

/// Sign of a vector under lexicographic comparison with zero.
fn lex_sign(components: impl Iterator<Item = i64>) -> i64 {
    for c in components {
        if c != 0 {
            return c.signum();
        }
    }
    0
}

/// Every legal permutation of a `depth`-loop nest, in lexicographic order
/// (the identity first).
pub fn legal_permutations(graph: &DepGraph, depth: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut perm: Vec<usize> = (0..depth).collect();
    permutations(&mut perm, 0, &mut |p| {
        if legal_permutation(graph, p) {
            out.push(p.to_vec());
        }
    });
    out.sort();
    out
}

fn permutations(items: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
    if k == items.len() {
        f(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permutations(items, k + 1, f);
        items.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ujam_ir::interp::execute;
    use ujam_ir::transform::permute_loops;
    use ujam_ir::NestBuilder;

    #[test]
    fn independent_nest_is_fully_permutable() {
        let nest = NestBuilder::new("free")
            .array("A", &[40, 40])
            .array("B", &[40, 40])
            .loop_("J", 1, 8)
            .loop_("I", 1, 8)
            .stmt("A(I,J) = B(I,J) + 1.0")
            .build();
        let g = DepGraph::build(&nest);
        assert_eq!(legal_permutations(&g, 2).len(), 2);
    }

    #[test]
    fn forward_wave_is_interchangeable() {
        // Distance (1,1): both orders keep it positive.
        let nest = NestBuilder::new("fw")
            .array("A", &[40, 40])
            .loop_("J", 2, 9)
            .loop_("I", 2, 9)
            .stmt("A(I,J) = A(I-1,J-1) * 0.5")
            .build();
        let g = DepGraph::build(&nest);
        assert!(legal_permutation(&g, &[1, 0]));
        // And the interpreter agrees.
        let p = permute_loops(&nest, &[1, 0]).unwrap();
        assert_eq!(execute(&p), execute(&nest));
    }

    #[test]
    fn skewed_wave_blocks_interchange_and_breaks_semantics() {
        let nest = NestBuilder::new("skew")
            .array("A", &[40, 40])
            .loop_("J", 2, 9)
            .loop_("I", 2, 9)
            .stmt("A(I,J) = A(I-1,J+1) * 0.5")
            .build();
        let g = DepGraph::build(&nest);
        assert!(!legal_permutation(&g, &[1, 0]));
        // The legality test is not conservative here: interchange really
        // does change the result.
        let p = permute_loops(&nest, &[1, 0]).unwrap();
        assert_ne!(execute(&p), execute(&nest));
    }

    #[test]
    fn reduction_interchange_is_legal() {
        // A(J) = A(J) + B(I): the accumulation's realizations are
        // (J:0, I:k>0); after interchange they become (k, 0), still
        // positive — each A(J) sees the B values in the same order.
        let nest = NestBuilder::new("red")
            .array("A", &[40])
            .array("B", &[40])
            .loop_("J", 1, 8)
            .loop_("I", 1, 8)
            .stmt("A(J) = A(J) + B(I)")
            .build();
        let g = DepGraph::build(&nest);
        assert!(legal_permutation(&g, &[0, 1]));
        assert!(legal_permutation(&g, &[1, 0]));
        let p = permute_loops(&nest, &[1, 0]).unwrap();
        assert_eq!(execute(&p), execute(&nest));
    }

    #[test]
    fn all_legal_permutations_preserve_semantics() {
        let nest = NestBuilder::new("mix")
            .array("A", &[40, 40])
            .array("B", &[40, 40])
            .loop_("J", 2, 9)
            .loop_("K", 2, 9)
            .loop_("I", 2, 9)
            .stmt("A(I,J) = A(I-1,J) + B(K,J)")
            .build();
        let g = DepGraph::build(&nest);
        let orig = execute(&nest);
        for perm in legal_permutations(&g, 3) {
            let p = permute_loops(&nest, &perm).unwrap();
            assert_eq!(execute(&p), orig, "permutation {perm:?} broke semantics");
        }
    }
}
