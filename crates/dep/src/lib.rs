//! Data-dependence analysis for affine loop nests.
//!
//! This crate is the *baseline substrate* of the reproduction: the
//! dependence-based approach the paper improves upon.  It provides
//!
//! * per-pair dependence testing (ZIV, strong SIV, weak SIV, and a GCD
//!   fallback for MIV subscripts) producing per-loop distance constraints,
//! * a [`DepGraph`] holding every realizable dependence — **including the
//!   input (read–read) dependences** whose storage cost the paper measures
//!   in Table 1 — with class counts and byte-level storage accounting,
//! * unroll-and-jam **safety** bounds per loop (§3.3: "the amount of
//!   unroll-and-jam that is determined to be safe is used as an upper
//!   bound"), derived from the classic strip-mine-and-interchange legality
//!   condition of Callahan, Cocke & Kennedy.
//!
//! # Example
//!
//! ```
//! use ujam_ir::NestBuilder;
//! use ujam_dep::{DepGraph, DepKind};
//!
//! let nest = NestBuilder::new("intro")
//!     .array("A", &[64]).array("B", &[64])
//!     .loop_("J", 1, 64).loop_("I", 1, 64)
//!     .stmt("A(J) = A(J) + B(I)")
//!     .build();
//! let g = DepGraph::build(&nest);
//! // B(I) carries an input dependence on itself across the J loop.
//! assert!(g.count(DepKind::Input) >= 1);
//! // A(J) = A(J) + ... is a true dependence carried by the I loop.
//! assert!(g.count(DepKind::True) >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dist;
mod graph;
mod permute;
mod safety;
mod tests_impl;

pub use dist::{lex_positive_realizable, Dist, DistVec};
pub use graph::{DepEdge, DepGraph, DepKind, GraphStats};
pub use permute::{legal_permutation, legal_permutations};
pub use safety::{safe_unroll_bounds, UNROLL_CAP};
pub use tests_impl::pairwise_distance;
