//! Distance vectors with exact and unconstrained components.

use std::fmt;

/// The dependence distance along one loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dist {
    /// The dependence holds exactly at this iteration difference.
    Exact(i64),
    /// The dependence can hold at any iteration difference the loop bounds
    /// allow (direction `*`): the subscripts do not constrain this loop.
    Any,
}

impl Dist {
    /// `true` if the component admits a strictly positive value, given that
    /// the loop runs for `trip` iterations.
    pub fn can_be_positive(self, trip: i64) -> bool {
        match self {
            Dist::Exact(k) => k > 0 && k < trip,
            Dist::Any => trip > 1,
        }
    }

    /// `true` if the component admits zero.
    pub fn can_be_zero(self) -> bool {
        !matches!(self, Dist::Exact(k) if k != 0)
    }

    /// The negated component (for the reversed dependence direction).
    pub fn negate(self) -> Dist {
        match self {
            Dist::Exact(k) => Dist::Exact(-k),
            Dist::Any => Dist::Any,
        }
    }

    /// Intersects two constraints on the same loop (from two subscript
    /// dimensions).  Returns `None` when they conflict — no dependence.
    pub fn meet(self, other: Dist) -> Option<Dist> {
        match (self, other) {
            (Dist::Any, d) | (d, Dist::Any) => Some(d),
            (Dist::Exact(a), Dist::Exact(b)) => (a == b).then_some(Dist::Exact(a)),
        }
    }
}

impl fmt::Display for Dist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dist::Exact(k) => write!(f, "{k}"),
            Dist::Any => write!(f, "*"),
        }
    }
}

/// A dependence distance vector, outermost loop first.
pub type DistVec = Vec<Dist>;

/// Decides whether the constraint product admits a lexicographically
/// positive vector within the loop bounds, and if it admits the zero vector.
///
/// Returns `(positive_realizable, zero_realizable)`.
///
/// Walking outermost-in: an `Any` component (on a loop with more than one
/// iteration) can always be chosen positive, making the vector positive
/// regardless of the suffix; an `Exact(k > 0)` within bounds does the same;
/// `Exact(0)` defers to the suffix; `Exact(k < 0)` (or out of bounds) kills
/// positivity at this level.
pub fn lex_positive_realizable(dist: &[Dist], trips: &[i64]) -> (bool, bool) {
    assert_eq!(dist.len(), trips.len(), "distance/trip length mismatch");
    let mut zero = true;
    for (&d, &trip) in dist.iter().zip(trips) {
        match d {
            Dist::Any => {
                // Choose positive here (possible when trip > 1): suffix free.
                return (trip > 1, zero);
            }
            Dist::Exact(k) => {
                if k.abs() >= trip {
                    // Out of the iteration space: no dependence at all; the
                    // caller treats this as unrealizable in both senses.
                    return (false, false);
                }
                if k > 0 {
                    return (true, false);
                }
                if k < 0 {
                    return (false, false);
                }
            }
        }
    }
    // All components zero.
    let _ = &mut zero;
    (false, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meet_combines_constraints() {
        assert_eq!(Dist::Any.meet(Dist::Exact(2)), Some(Dist::Exact(2)));
        assert_eq!(Dist::Exact(2).meet(Dist::Exact(2)), Some(Dist::Exact(2)));
        assert_eq!(Dist::Exact(2).meet(Dist::Exact(3)), None);
        assert_eq!(Dist::Any.meet(Dist::Any), Some(Dist::Any));
    }

    #[test]
    fn lex_positive_cases() {
        let trips = [8, 8];
        assert_eq!(
            lex_positive_realizable(&[Dist::Exact(1), Dist::Exact(0)], &trips),
            (true, false)
        );
        assert_eq!(
            lex_positive_realizable(&[Dist::Exact(0), Dist::Exact(0)], &trips),
            (false, true)
        );
        assert_eq!(
            lex_positive_realizable(&[Dist::Exact(-1), Dist::Any], &trips),
            (false, false)
        );
        assert_eq!(
            lex_positive_realizable(&[Dist::Any, Dist::Exact(-3)], &trips),
            (true, true)
        );
        assert_eq!(
            lex_positive_realizable(&[Dist::Exact(0), Dist::Exact(2)], &trips),
            (true, false)
        );
    }

    #[test]
    fn out_of_bounds_distance_is_unrealizable() {
        assert_eq!(
            lex_positive_realizable(&[Dist::Exact(9)], &[8]),
            (false, false)
        );
        assert_eq!(
            lex_positive_realizable(&[Dist::Exact(7)], &[8]),
            (true, false)
        );
    }

    #[test]
    fn single_iteration_loop_any_cannot_be_positive() {
        assert_eq!(lex_positive_realizable(&[Dist::Any], &[1]), (false, true));
    }

    #[test]
    fn negate_and_display() {
        assert_eq!(Dist::Exact(3).negate(), Dist::Exact(-3));
        assert_eq!(Dist::Any.negate(), Dist::Any);
        assert_eq!(Dist::Exact(-2).to_string(), "-2");
        assert_eq!(Dist::Any.to_string(), "*");
    }
}
