//! The evaluation workloads of the reproduction.
//!
//! * [`kernels`] — the 19 test loops of the paper's Table 2, rebuilt in
//!   the `ujam-ir` DSL with the reference patterns of the original
//!   SPEC92 / Perfect / NAS / local codes (see [`Kernel`] for the
//!   per-kernel notes on what was preserved);
//! * [`deep_kernels`] — deep (3–5 loop) nests — tensor contractions, a
//!   3-d stencil, batched matmuls — for the register-tiling search mode
//!   that spans more than two loops;
//! * [`corpus`] — a seeded synthetic routine generator standing in for
//!   the 1187-routine Fortran corpus of §5.1 (we do not have the original
//!   sources); the pattern mix mirrors array-based scientific code:
//!   stencils, reductions, dense linear algebra, and multi-array sweeps.
//!
//! All kernels are separable SIV (§3.5) — as the paper notes, "on loops
//! where unroll-and-jam is applicable nearly all array references fit
//! these criteria" — and use trip counts divisible by every unroll factor
//! up to 8 so the clean (no clean-up loop) transformation always applies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod deep;
mod suite;
mod synth;

pub use deep::{deep_kernel, deep_kernels, DeepKernel};
pub use suite::{kernel, kernels, optimize_suite, Kernel};
pub use synth::{corpus, corpus_deep, corpus_routine, corpus_subroutine, corpus_subroutines};
