//! The 19 test loops of Table 2.

use ujam_ir::{LoopNest, NestBuilder};

/// One test loop of the paper's Table 2.
///
/// The `description` column mirrors the paper; `notes` records how the
/// kernel was reconstructed (the original Fortran sources are not part of
/// this repository, so each loop is rebuilt from the published subroutine
/// with its reference pattern — array ranks, subscript offsets, def/use
/// mix, loop order — preserved, and any simplification stated).
#[derive(Clone, Copy, Debug)]
pub struct Kernel {
    /// Table 2 loop number.
    pub num: usize,
    /// Table 2 loop name.
    pub name: &'static str,
    /// Suite/benchmark/subroutine or short description (Table 2 column).
    pub description: &'static str,
    /// Reconstruction notes.
    pub notes: &'static str,
    /// `true` for 3-deep kernels (sized `n³` instead of `n²`).
    pub three_deep: bool,
    build: fn(i64) -> LoopNest,
}

impl Kernel {
    /// Builds the loop nest at its default evaluation size (`N2`/`N3`).
    pub fn nest(&self) -> LoopNest {
        (self.build)(if self.three_deep { N3 } else { N2 })
    }

    /// Builds the loop nest with `n` iterations per loop — the scaling
    /// experiments sweep this across the cache-capacity crossover.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a positive multiple of 24 (so every unroll
    /// factor up to 8, except 5 and 7, divides the trip count).
    pub fn nest_sized(&self, n: i64) -> LoopNest {
        assert!(n > 0 && n % 24 == 0, "kernel sizes must be multiples of 24");
        (self.build)(n)
    }
}

/// Problem sizes: 2-deep nests use `N2 × N2`, 3-deep use `N3³`.  Both are
/// divisible by 1..=8 (except 7) so every unroll factor in the search
/// space transforms cleanly, and both exceed the modelled caches.
const N2: i64 = 240;
const N3: i64 = 48;

fn jacobi(n: i64) -> LoopNest {
    NestBuilder::new("jacobi")
        .array("A", &[n + 4, n + 4])
        .array("B", &[n + 4, n + 4])
        .loop_("J", 2, n + 1)
        .loop_("I", 2, n + 1)
        .stmt("B(I,J) = 0.25 * (A(I-1,J) + A(I+1,J) + A(I,J-1) + A(I,J+1))")
        .build()
}

fn afold(n: i64) -> LoopNest {
    // Adjoint convolution: every output accumulates a product stream.
    // Liberty: the original subscript `C(J-I)` is MIV; the separable form
    // keeps the loop balance profile (two streaming loads feeding one
    // invariant accumulator).
    NestBuilder::new("afold")
        .array("A", &[n + 4])
        .array("X", &[n + 4])
        .array("C", &[n + 4])
        .loop_("J", 1, n)
        .loop_("I", 1, n)
        .stmt("A(J) = A(J) + X(I) * C(I)")
        .build()
}

fn btrix1(n: i64) -> LoopNest {
    // SPEC/NASA7/BTRIX loop 1: block-tridiagonal forward elimination
    // along J with an I-invariant pivot row.
    NestBuilder::new("btrix.1")
        .array("S", &[n + 4, n + 4, n + 4])
        .array("B", &[n + 4, n + 4])
        .loop_("K", 1, n)
        .loop_("J", 2, n + 1)
        .loop_("I", 1, n)
        .stmt("S(I,J,K) = S(I,J,K) - B(I,J) * S(I,J-1,K)")
        .build()
}

fn btrix2(n: i64) -> LoopNest {
    // BTRIX loop 2: scaling plus rank-one correction.
    NestBuilder::new("btrix.2")
        .array("C", &[n + 4, n + 4, n + 4])
        .array("D", &[n + 4])
        .array("E", &[n + 4, n + 4])
        .loop_("K", 1, n)
        .loop_("J", 1, n)
        .loop_("I", 1, n)
        .stmt("C(I,J,K) = C(I,J,K) * D(J) + E(I,K)")
        .build()
}

fn btrix7(n: i64) -> LoopNest {
    // BTRIX loop 7: back-substitution sweep against the factored diagonal
    // (kept as its own array SD so the reference stays separable SIV).
    NestBuilder::new("btrix.7")
        .array("S", &[n + 4, n + 4, n + 4])
        .array("U", &[n + 4, n + 4])
        .array("SD", &[n + 4, n + 4])
        .loop_("K", 1, n)
        .loop_("J", 1, n)
        .loop_("I", 1, n)
        .stmt("S(I,J,K) = S(I,J,K) - U(I,J) * SD(J,K)")
        .build()
}

fn collc2(n: i64) -> LoopNest {
    // Perfect/FLO52/COLLC loop 2: coarse-grid collection.
    NestBuilder::new("collc.2")
        .array("W", &[n + 4, n + 4])
        .array("FS", &[n + 4, n + 4])
        .loop_("J", 1, n)
        .loop_("I", 1, n)
        .stmt("W(I,J) = W(I,J) - FS(I,J) + FS(I+1,J)")
        .build()
}

fn cond7(n: i64) -> LoopNest {
    // local/simple/CONDUCT loop 7: heat-conduction flux.
    NestBuilder::new("cond.7")
        .array("H", &[n + 4, n + 4])
        .array("C1", &[n + 4, n + 4])
        .array("T", &[n + 4, n + 4])
        .loop_("J", 1, n)
        .loop_("I", 1, n)
        .stmt("H(I,J) = H(I,J) + C1(I,J) * (T(I+1,J) - T(I,J))")
        .build()
}

fn cond9(n: i64) -> LoopNest {
    // CONDUCT loop 9: the transverse-direction companion of cond.7.
    NestBuilder::new("cond.9")
        .array("H", &[n + 4, n + 4])
        .array("C2", &[n + 4, n + 4])
        .array("T", &[n + 4, n + 4])
        .loop_("J", 1, n)
        .loop_("I", 1, n)
        .stmt("H(I,J) = H(I,J) + C2(I,J) * (T(I,J+1) - T(I,J))")
        .build()
}

fn dflux16(n: i64) -> LoopNest {
    // Perfect/FLO52/DFLUX loop 16: dissipation flux along I.
    NestBuilder::new("dflux.16")
        .array("FS", &[n + 4, n + 4])
        .array("DIS", &[n + 4, n + 4])
        .array("W", &[n + 4, n + 4])
        .loop_("J", 1, n)
        .loop_("I", 1, n)
        .stmt("FS(I,J) = DIS(I,J) * (W(I+1,J) - W(I,J))")
        .build()
}

fn dflux17(n: i64) -> LoopNest {
    // DFLUX loop 17: flux difference back into the state.
    NestBuilder::new("dflux.17")
        .array("DW", &[n + 4, n + 4])
        .array("FS", &[n + 4, n + 4])
        .loop_("J", 1, n)
        .loop_("I", 2, n + 1)
        .stmt("DW(I,J) = DW(I,J) + FS(I,J) - FS(I-1,J)")
        .build()
}

fn dflux20(n: i64) -> LoopNest {
    // DFLUX loop 20: the J-direction dissipation pass.
    NestBuilder::new("dflux.20")
        .array("FS", &[n + 4, n + 4])
        .array("DIS", &[n + 4, n + 4])
        .array("W", &[n + 4, n + 4])
        .loop_("J", 1, n)
        .loop_("I", 1, n)
        .stmt("FS(I,J) = DIS(I,J) * (W(I,J+1) - W(I,J))")
        .build()
}

fn dmxpy0(n: i64) -> LoopNest {
    // LINPACK dmxpy, column sweep: y += M·x with the column loop outer.
    NestBuilder::new("dmxpy0")
        .array("Y", &[n + 4])
        .array("X", &[n + 4])
        .array("M", &[n + 4, n + 4])
        .loop_("J", 1, n)
        .loop_("I", 1, n)
        .stmt("Y(I) = Y(I) + X(J) * M(I,J)")
        .build()
}

fn dmxpy1(n: i64) -> LoopNest {
    // dmxpy with the loops interchanged: the dot-product orientation.
    NestBuilder::new("dmxpy1")
        .array("Y", &[n + 4])
        .array("X", &[n + 4])
        .array("M", &[n + 4, n + 4])
        .loop_("I", 1, n)
        .loop_("J", 1, n)
        .stmt("Y(I) = Y(I) + X(J) * M(I,J)")
        .build()
}

fn gmtry3(n: i64) -> LoopNest {
    // SPEC/NASA7/GMTRY loop 3: Gaussian-elimination update.
    NestBuilder::new("gmtry.3")
        .array("R", &[n + 4, n + 4])
        .array("P", &[n + 4, n + 4])
        .array("Q", &[n + 4, n + 4])
        .loop_("K", 1, n)
        .loop_("J", 1, n)
        .loop_("I", 1, n)
        .stmt("R(I,J) = R(I,J) - P(I,K) * Q(K,J)")
        .build()
}

fn mmjik(n: i64) -> LoopNest {
    // Matrix multiply, JIK order: the K reduction innermost.
    NestBuilder::new("mmjik")
        .array("A", &[n + 4, n + 4])
        .array("B", &[n + 4, n + 4])
        .array("C", &[n + 4, n + 4])
        .loop_("J", 1, n)
        .loop_("I", 1, n)
        .loop_("K", 1, n)
        .stmt("C(I,J) = C(I,J) + A(I,K) * B(K,J)")
        .build()
}

fn mmjki(n: i64) -> LoopNest {
    // Matrix multiply, JKI order: the stride-1 I loop innermost.
    NestBuilder::new("mmjki")
        .array("A", &[n + 4, n + 4])
        .array("B", &[n + 4, n + 4])
        .array("C", &[n + 4, n + 4])
        .loop_("J", 1, n)
        .loop_("K", 1, n)
        .loop_("I", 1, n)
        .stmt("C(I,J) = C(I,J) + A(I,K) * B(K,J)")
        .build()
}

fn vpenta7(n: i64) -> LoopNest {
    // SPEC/NASA7/VPENTA loop 7: pentadiagonal back-substitution; the J
    // recurrence is loop-carried but forward, so jamming J is legal.
    NestBuilder::new("vpenta.7")
        .array("X", &[n + 4, n + 4])
        .array("F", &[n + 4, n + 4])
        .array("B", &[n + 4, n + 4])
        .array("C", &[n + 4, n + 4])
        .loop_("J", 3, n + 2)
        .loop_("I", 1, n)
        .stmt("X(I,J) = F(I,J) - B(I,J) * X(I,J-1) - C(I,J) * X(I,J-2)")
        .build()
}

fn sor(n: i64) -> LoopNest {
    // Successive over-relaxation: in-place 5-point update.
    NestBuilder::new("sor")
        .array("A", &[n + 4, n + 4])
        .loop_("J", 2, n + 1)
        .loop_("I", 2, n + 1)
        .stmt("A(I,J) = 0.2 * (A(I,J) + A(I-1,J) + A(I+1,J) + A(I,J-1) + A(I,J+1))")
        .build()
}

fn shal(n: i64) -> LoopNest {
    // Shallow-water kernel (SWM): multi-array stencil with invariant
    // weights.
    NestBuilder::new("shal")
        .array("UNEW", &[n + 4, n + 4])
        .array("UOLD", &[n + 4, n + 4])
        .array("Z", &[n + 4, n + 4])
        .array("CV", &[n + 4, n + 4])
        .array("H", &[n + 4, n + 4])
        .loop_("J", 1, n)
        .loop_("I", 1, n)
        .stmt(
            "UNEW(I,J) = UOLD(I,J) + tdts8 * (Z(I+1,J+1) + Z(I+1,J)) * \
             (CV(I+1,J+1) + CV(I,J+1) + CV(I,J) + CV(I+1,J)) - \
             tdtsdx * (H(I+1,J) - H(I,J))",
        )
        .build()
}

/// The Table 2 roster, in the paper's order.
pub fn kernels() -> Vec<Kernel> {
    macro_rules! k {
        ($num:expr, $name:expr, $desc:expr, $notes:expr, $f:ident) => {
            k!($num, $name, $desc, $notes, $f, false)
        };
        ($num:expr, $name:expr, $desc:expr, $notes:expr, $f:ident, $deep:expr) => {
            Kernel {
                num: $num,
                name: $name,
                description: $desc,
                notes: $notes,
                three_deep: $deep,
                build: $f,
            }
        };
    }
    vec![
        k!(
            1,
            "jacobi",
            "Compute Jacobian of a Matrix",
            "5-point relaxation stencil, out-of-place",
            jacobi
        ),
        k!(
            2,
            "afold",
            "Adjoint Convolution",
            "separable form of the accumulate-products pattern (original C(J-I) is MIV)",
            afold
        ),
        k!(
            3,
            "btrix.1",
            "SPEC/NASA7/BTRIX",
            "forward elimination along J in a 3-D block solve",
            btrix1,
            true
        ),
        k!(
            4,
            "btrix.2",
            "SPEC/NASA7/BTRIX",
            "scale-and-correct sweep over the 3-D block",
            btrix2,
            true
        ),
        k!(
            5,
            "btrix.7",
            "SPEC/NASA7/BTRIX",
            "back-substitution sweep with an invariant pivot column",
            btrix7,
            true
        ),
        k!(
            6,
            "collc.2",
            "Perfect/FLO52/COLLC",
            "residual collection: forward difference of FS",
            collc2
        ),
        k!(
            7,
            "cond.7",
            "local/simple/CONDUCT",
            "I-direction conduction flux",
            cond7
        ),
        k!(
            8,
            "cond.9",
            "local/simple/CONDUCT",
            "J-direction conduction flux",
            cond9
        ),
        k!(
            9,
            "dflux.16",
            "Perfect/FLO52/DFLUX",
            "I-direction dissipation flux",
            dflux16
        ),
        k!(
            10,
            "dflux.17",
            "Perfect/FLO52/DFLUX",
            "flux difference accumulated into DW",
            dflux17
        ),
        k!(
            11,
            "dflux.20",
            "Perfect/FLO52/DFLUX",
            "J-direction dissipation flux",
            dflux20
        ),
        k!(
            12,
            "dmxpy0",
            "Vector-Matrix Multiply",
            "LINPACK dmxpy, column loop outer",
            dmxpy0
        ),
        k!(
            13,
            "dmxpy1",
            "Vector-Matrix Multiply",
            "dmxpy interchanged: dot-product orientation",
            dmxpy1
        ),
        k!(
            14,
            "gmtry.3",
            "SPEC/NASA7/GMTRY",
            "Gaussian-elimination rank-1 update",
            gmtry3,
            true
        ),
        k!(
            15,
            "mmjik",
            "Matrix-Matrix Multiply",
            "JIK loop order (reduction innermost)",
            mmjik,
            true
        ),
        k!(
            16,
            "mmjki",
            "Matrix-Matrix Multiply",
            "JKI loop order (stride-1 innermost)",
            mmjki,
            true
        ),
        k!(
            17,
            "vpenta.7",
            "SPEC/NASA7/VPENTA",
            "pentadiagonal back-substitution",
            vpenta7
        ),
        k!(
            18,
            "sor",
            "Successive Over Relaxation",
            "in-place 5-point relaxation",
            sor
        ),
        k!(
            19,
            "shal",
            "Shallow Water Kernel",
            "multi-array momentum update with scalar weights",
            shal
        ),
    ]
}

/// Looks a kernel up by name.  `matmul` is accepted as an alias for
/// `mmjki` (the column-major matrix-multiply ordering), since that is
/// what most callers mean by "the matmul kernel".
pub fn kernel(name: &str) -> Option<Kernel> {
    let name = if name == "matmul" { "mmjki" } else { name };
    kernels().into_iter().find(|k| k.name == name)
}

/// Optimizes the whole Table 2 suite through `ujam-core`'s parallel
/// batch driver: one `(kernel, plan)` pair per roster entry, in order.
///
/// Each nest gets its own analysis context, so results are identical to
/// calling `optimize` per kernel — the batch only changes scheduling.
pub fn optimize_suite(
    machine: &ujam_machine::MachineModel,
) -> Vec<(
    Kernel,
    Result<ujam_core::Optimized, ujam_core::OptimizeError>,
)> {
    let ks = kernels();
    let nests: Vec<_> = ks.iter().map(|k| k.nest()).collect();
    ks.into_iter()
        .zip(ujam_core::optimize_batch(&nests, machine))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_nineteen_build_and_validate() {
        let ks = kernels();
        assert_eq!(ks.len(), 19);
        for k in &ks {
            let nest = k.nest();
            nest.validate().expect(k.name);
            assert!(nest.depth() >= 2, "{} must be jammable", k.name);
            assert!(nest.flops_per_iter() >= 1, "{}", k.name);
        }
    }

    #[test]
    fn numbers_match_table_2_order() {
        for (i, k) in kernels().iter().enumerate() {
            assert_eq!(k.num, i + 1);
        }
    }

    #[test]
    fn all_kernels_are_separable_siv() {
        for k in kernels() {
            assert!(
                k.nest().is_siv_separable(),
                "{} violates the §3.5 restriction",
                k.name
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(kernel("mmjki").unwrap().num, 16);
        assert!(kernel("nope").is_none());
    }

    #[test]
    fn optimize_suite_covers_the_roster() {
        let plans = optimize_suite(&ujam_machine::MachineModel::dec_alpha());
        assert_eq!(plans.len(), 19);
        for (k, plan) in &plans {
            let plan = plan.as_ref().expect(k.name);
            assert_eq!(plan.unroll.len(), k.nest().depth(), "{}", k.name);
        }
    }

    #[test]
    fn trip_counts_divide_all_factors_up_to_six() {
        for k in kernels() {
            let nest = k.nest();
            for l in &nest.loops()[..nest.depth() - 1] {
                for copies in [2i64, 3, 4, 6, 8] {
                    assert_eq!(
                        l.trip_count() % copies,
                        0,
                        "{}: loop {} trip {} not divisible by {}",
                        k.name,
                        l.var(),
                        l.trip_count(),
                        copies
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod sized_tests {
    use super::*;

    #[test]
    fn sized_kernels_scale_iteration_spaces() {
        for k in kernels() {
            let small = k.nest_sized(24);
            let big = k.nest_sized(48);
            let ratio = big.iterations() / small.iterations();
            let expect = if k.three_deep { 8 } else { 4 };
            assert_eq!(ratio, expect, "{}", k.name);
            small.validate().expect(k.name);
            big.validate().expect(k.name);
        }
    }

    #[test]
    #[should_panic(expected = "multiples of 24")]
    fn bad_sizes_are_rejected() {
        let _ = kernels()[0].nest_sized(25);
    }
}
