//! Deep (3–5 loop) nests for the register-tiling search mode.
//!
//! The Table 2 suite tops out at three loops, and the paper's own search
//! never spans more than two of them (§4.5).  These kernels — tensor
//! contractions, a 3-d stencil, batched matmuls — are what actually
//! exercises unroll vectors over k > 2 loops: a 4-deep nest has three
//! jammable loops, a 5-deep nest four.  Like the suite, every kernel is
//! separable SIV with trip counts divisible by each unroll factor up to
//! 8 (except 5 and 7), so clean (no clean-up loop) transformations
//! apply throughout the search space.

use ujam_ir::{LoopNest, NestBuilder};

/// One deep evaluation kernel.
#[derive(Clone, Copy, Debug)]
pub struct DeepKernel {
    /// Kernel name (`ujam optimize` and the serve daemon resolve it).
    pub name: &'static str,
    /// What the nest computes.
    pub description: &'static str,
    /// Nest depth (3–5); the number of jammable loops is `depth - 1`.
    pub depth: usize,
    build: fn(i64) -> LoopNest,
}

impl DeepKernel {
    /// Builds the nest at its default evaluation size.
    pub fn nest(&self) -> LoopNest {
        (self.build)(N)
    }

    /// Builds the nest with `n` iterations per loop.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a positive multiple of 24, mirroring
    /// [`crate::Kernel::nest_sized`].
    pub fn nest_sized(&self, n: i64) -> LoopNest {
        assert!(n > 0 && n % 24 == 0, "kernel sizes must be multiples of 24");
        (self.build)(n)
    }
}

/// Default trips per loop: divisible by 1..=8 except 5 and 7, and small
/// enough that even a 5-deep nest's tables stay cheap (table queries are
/// analytic — the iteration count never runs).
const N: i64 = 24;

fn stencil3d(n: i64) -> LoopNest {
    // 7-point Laplacian sweep: three jammable-candidate loops (K, J),
    // group-spatial reuse on every axis.
    NestBuilder::new("stencil3d")
        .array("A", &[n + 4, n + 4, n + 4])
        .array("B", &[n + 4, n + 4, n + 4])
        .loop_("K", 2, n + 1)
        .loop_("J", 2, n + 1)
        .loop_("I", 2, n + 1)
        .stmt(
            "B(I,J,K) = A(I-1,J,K) + A(I+1,J,K) + A(I,J-1,K) + A(I,J+1,K) \
             + A(I,J,K-1) + A(I,J,K+1) - 6.0 * A(I,J,K)",
        )
        .build()
}

fn contract3(n: i64) -> LoopNest {
    // Matrix product in K-outer order (distinct from the suite's mmjik /
    // mmjki orders): the reduction loop carries the C reuse.
    NestBuilder::new("contract3")
        .array("A", &[n + 4, n + 4])
        .array("B", &[n + 4, n + 4])
        .array("C", &[n + 4, n + 4])
        .loop_("K", 1, n)
        .loop_("J", 1, n)
        .loop_("I", 1, n)
        .stmt("C(I,J) = C(I,J) + A(I,K) * B(K,J)")
        .build()
}

fn tensor4(n: i64) -> LoopNest {
    // Mode-3 tensor-matrix contraction T(I,J,K) += A(I,J,L) · B(L,K):
    // three jammable loops (J, K, L), each carrying reuse of a different
    // operand — the canonical k = 3 register-tiling candidate.
    NestBuilder::new("tensor4")
        .array("T", &[n + 4, n + 4, n + 4])
        .array("A", &[n + 4, n + 4, n + 4])
        .array("B", &[n + 4, n + 4])
        .loop_("J", 1, n)
        .loop_("K", 1, n)
        .loop_("L", 1, n)
        .loop_("I", 1, n)
        .stmt("T(I,J,K) = T(I,J,K) + A(I,J,L) * B(L,K)")
        .build()
}

fn assemble4(n: i64) -> LoopNest {
    // Tensor assembly from three pairwise slices: each outer loop leaves
    // exactly one read operand invariant (A in J, B in K, C in L), so all
    // three score positive locality and `SelectLoops` with a lifted cap
    // genuinely builds a 3-d unroll space — the roster's organic k = 3
    // pipeline exercise.  The target is written once per cell, so no
    // dependence constrains the jam.
    NestBuilder::new("assemble4")
        .array("T", &[n + 4, n + 4, n + 4, n + 4])
        .array("A", &[n + 4, n + 4, n + 4])
        .array("B", &[n + 4, n + 4, n + 4])
        .array("C", &[n + 4, n + 4, n + 4])
        .loop_("J", 1, n)
        .loop_("K", 1, n)
        .loop_("L", 1, n)
        .loop_("I", 1, n)
        .stmt("T(I,J,K,L) = A(I,K,L) + B(I,J,L) + C(I,J,K)")
        .build()
}

fn bmm4(n: i64) -> LoopNest {
    // Batched matmul C(·,·,N) += A(·,·,N) · W: the batch loop N is
    // reuse-free for W (invariant) and streams C and A.
    NestBuilder::new("bmm4")
        .array("C", &[n + 4, n + 4, n + 4])
        .array("A", &[n + 4, n + 4, n + 4])
        .array("W", &[n + 4, n + 4])
        .loop_("N", 1, n)
        .loop_("J", 1, n)
        .loop_("K", 1, n)
        .loop_("I", 1, n)
        .stmt("C(I,J,N) = C(I,J,N) + A(I,K,N) * W(K,J)")
        .build()
}

fn bcontract5(n: i64) -> LoopNest {
    // Doubly-batched contraction over (M, N): four jammable loops, the
    // deepest nest in the roster.
    NestBuilder::new("bcontract5")
        .array("C", &[n + 4, n + 4, n + 4, n + 4])
        .array("A", &[n + 4, n + 4, n + 4, n + 4])
        .array("W", &[n + 4, n + 4])
        .loop_("N", 1, n)
        .loop_("M", 1, n)
        .loop_("J", 1, n)
        .loop_("K", 1, n)
        .loop_("I", 1, n)
        .stmt("C(I,J,M,N) = C(I,J,M,N) + A(I,K,M,N) * W(K,J)")
        .build()
}

/// The deep kernel roster, shallowest first.
pub fn deep_kernels() -> Vec<DeepKernel> {
    vec![
        DeepKernel {
            name: "stencil3d",
            description: "7-point 3-d Laplacian sweep",
            depth: 3,
            build: stencil3d,
        },
        DeepKernel {
            name: "contract3",
            description: "matrix product, K-outer order",
            depth: 3,
            build: contract3,
        },
        DeepKernel {
            name: "tensor4",
            description: "mode-3 tensor-matrix contraction",
            depth: 4,
            build: tensor4,
        },
        DeepKernel {
            name: "assemble4",
            description: "3-way tensor assembly from pairwise slices",
            depth: 4,
            build: assemble4,
        },
        DeepKernel {
            name: "bmm4",
            description: "batched matrix multiply",
            depth: 4,
            build: bmm4,
        },
        DeepKernel {
            name: "bcontract5",
            description: "doubly-batched matrix contraction",
            depth: 5,
            build: bcontract5,
        },
    ]
}

/// Looks a deep kernel up by name.
pub fn deep_kernel(name: &str) -> Option<DeepKernel> {
    deep_kernels().into_iter().find(|k| k.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_spans_depths_three_through_five() {
        let ks = deep_kernels();
        assert_eq!(ks.len(), 6);
        let depths: Vec<usize> = ks.iter().map(|k| k.depth).collect();
        assert_eq!(depths, [3, 3, 4, 4, 4, 5]);
        for k in &ks {
            let nest = k.nest();
            assert_eq!(nest.depth(), k.depth, "{}", k.name);
            assert_eq!(nest.name(), k.name);
            nest.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", k.name));
        }
    }

    #[test]
    fn lookup_finds_every_roster_entry() {
        for k in deep_kernels() {
            assert_eq!(deep_kernel(k.name).expect("found").name, k.name);
        }
        assert!(deep_kernel("nosuchkernel").is_none());
    }

    #[test]
    fn trip_counts_divide_cleanly() {
        for k in deep_kernels() {
            for lp in k.nest().loops() {
                let trip = lp.trip_count();
                for f in [2i64, 3, 4, 6, 8] {
                    assert_eq!(trip % f, 0, "{}: trip {trip} vs factor {f}", k.name);
                }
            }
        }
    }

    #[test]
    fn sized_builds_scale_and_reject_bad_sizes() {
        let k = deep_kernel("tensor4").expect("known");
        let small = k.nest_sized(24);
        let big = k.nest_sized(48);
        assert_eq!(
            small.loops()[0].trip_count() * 2,
            big.loops()[0].trip_count()
        );
        assert!(std::panic::catch_unwind(|| k.nest_sized(23)).is_err());
    }
}
