//! A seeded synthetic routine corpus for the Table 1 statistics.
//!
//! §5.1 of the paper measures input-dependence fractions over 1187
//! routines from SPEC92, Perfect, NAS and local suites.  Those sources
//! are not available here, so this module generates routines whose
//! *reference-pattern mix* matches array-based scientific Fortran:
//! stencils (neighbour reads re-reading each other's data), reductions
//! (invariant accumulators), dense linear algebra (transposed and
//! invariant operand walks), and plain multi-array sweeps.  The claim
//! under reproduction — read–read dependences dominate the dependence
//! graph — is a structural property of these patterns, not of the exact
//! 1992 source files.

use ujam_ir::{LoopNest, NestBuilder};
use ujam_rng::Rng;

/// The pattern families the generator mixes, with weights loosely
/// following their frequency in scientific codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Family {
    /// `B(I,J) = Σ A(I±k, J±k)` — stencil relaxation.
    Stencil,
    /// `A(J) = A(J) + ...` — reduction with an invariant target.
    Reduction,
    /// `C(I,J) += A(I,K)·B(K,J)`-shaped linear algebra.
    LinearAlgebra,
    /// Independent elementwise sweeps over several arrays.
    Sweep,
    /// In-place updates (`A = f(A)`): flow/anti/output dependences but no
    /// input dependences — the paper's 0% band.
    InPlace,
}

fn pick_family(rng: &mut Rng) -> Family {
    match rng.int(0, 13) {
        0..=3 => Family::Stencil,
        4..=6 => Family::Reduction,
        7..=8 => Family::LinearAlgebra,
        9..=11 => Family::Sweep,
        _ => Family::InPlace,
    }
}

/// Generates the `idx`-th single-nest routine of the seeded corpus.
///
/// Routines are deterministic in `(seed, idx)`; sizes are kept small —
/// the dependence statistics depend on the reference pattern, not the
/// trip counts.
pub fn corpus_routine(seed: u64, idx: usize) -> LoopNest {
    let mut rng = Rng::new(seed ^ (idx as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let name = format!("synth{idx}");
    gen_nest(&mut rng, &name)
}

/// A whole synthetic *subroutine*: several loop nests, as in the Fortran
/// routines of the paper's corpus (whose per-routine dependence counts
/// aggregate every nest in the subroutine).
///
/// Real subroutines have a character — a relaxation routine is mostly
/// stencils, an update routine mostly in-place sweeps — so each generated
/// subroutine draws most of its nests from one *dominant* family.  This
/// keeps the per-routine input-percentage distribution wide (the paper's
/// std-dev is 33.6) instead of averaging every routine toward the corpus
/// mean.
pub fn corpus_subroutine(seed: u64, idx: usize) -> Vec<LoopNest> {
    let mut rng = Rng::new(seed ^ (idx as u64).wrapping_mul(0xd134_2543_de82_ef95));
    let nests = rng.int(2, 10);
    let dominant = pick_family(&mut rng);
    (0..nests)
        .map(|k| {
            let family = if rng.chance(0.8) {
                dominant
            } else {
                pick_family(&mut rng)
            };
            gen_nest_of(&mut rng, &format!("synth{idx}_{k}"), family)
        })
        .collect()
}

fn gen_nest(rng: &mut Rng, name: &str) -> LoopNest {
    let family = pick_family(rng);
    gen_nest_of(rng, name, family)
}

fn gen_nest_of(rng: &mut Rng, name: &str, family: Family) -> LoopNest {
    match family {
        Family::Stencil => {
            // Large relaxation stencils dominate scientific codes; their
            // k reads generate O(k²) input dependences, which is what
            // drives the corpus-wide fraction toward the paper's 84%.
            let terms = rng.int(3, 8);
            let stmts = rng.int(1, 2);
            let mut b = NestBuilder::new(name)
                .array("A", &[40, 40])
                .array("B", &[40, 40])
                .array("C", &[40, 40])
                .loop_("J", 1, 24)
                .loop_("I", 1, 24);
            for s in 0..stmts {
                let mut rhs = String::from("0.0");
                for _ in 0..terms {
                    let di = rng.int(-1, 1);
                    let dj = rng.int(-1, 1);
                    rhs.push_str(&format!(" + A(I+{}, J+{})", di + 2, dj + 2));
                }
                b = b.stmt(&format!("{}(I,J) = {rhs}", if s == 0 { "B" } else { "C" }));
            }
            b.build()
        }
        Family::Reduction => {
            let extra = rng.int(1, 3);
            let mut rhs = String::from("A(J)");
            for k in 0..extra {
                if rng.chance(0.5) {
                    rhs.push_str(&format!(" + X{k}(I)"));
                } else {
                    rhs.push_str(&format!(" + X{k}(I) * X{k}(I)"));
                }
            }
            let mut b = NestBuilder::new(name).array("A", &[40]);
            for k in 0..extra {
                b = b.array(&format!("X{k}"), &[40]);
            }
            b.loop_("J", 1, 24)
                .loop_("I", 1, 24)
                .stmt(&format!("A(J) = {rhs}"))
                .build()
        }
        Family::LinearAlgebra => {
            // Randomize the loop order of the canonical triple loop.
            let orders = [["J", "K", "I"], ["J", "I", "K"], ["K", "J", "I"]];
            let ord = orders[rng.index(orders.len())];
            let mut b = NestBuilder::new(name)
                .array("C", &[24, 24])
                .array("A", &[24, 24])
                .array("B", &[24, 24]);
            for v in ord {
                b = b.loop_(v, 1, 12);
            }
            b.stmt("C(I,J) = C(I,J) + A(I,K) * B(K,J)").build()
        }
        Family::InPlace => {
            let scaled = rng.chance(0.5);
            NestBuilder::new(name)
                .array("A", &[40, 40])
                .loop_("J", 1, 24)
                .loop_("I", 1, 24)
                .stmt(if scaled {
                    "A(I,J) = A(I,J) * 0.99"
                } else {
                    "A(I,J) = A(I,J) + 1.0"
                })
                .build()
        }
        Family::Sweep => {
            let stmts = rng.int(1, 3);
            let mut b = NestBuilder::new(name)
                .array("P", &[40, 40])
                .array("Q", &[40, 40])
                .array("R", &[40, 40]);
            b = b.loop_("J", 1, 24).loop_("I", 1, 24);
            for s in 0..stmts {
                b = b.stmt(&match s {
                    0 => "P(I,J) = Q(I,J) * 2.0".to_string(),
                    1 => "R(I,J) = P(I,J) + Q(I,J)".to_string(),
                    _ => "Q(I,J) = R(I,J) - P(I,J)".to_string(),
                });
            }
            b.build()
        }
    }
}

/// Generates a corpus of `n` whole subroutines (multi-nest routines) from
/// one seed — the granularity at which the paper's Table 1 counts
/// dependences.
pub fn corpus_subroutines(seed: u64, n: usize) -> Vec<Vec<LoopNest>> {
    (0..n).map(|i| corpus_subroutine(seed, i)).collect()
}

/// Generates `n` seeded *deep* nests (depth 3–5) for the register-tiling
/// semantics fuzz: 3-d stencils, tensor contractions, batched matmuls,
/// deep sweeps, and in-place updates.
///
/// Trip counts shrink with depth (12 / 6 / 4) so exhaustively executing
/// every applicable k-loop unroll vector through the interpreter stays
/// cheap, while each trip count keeps several divisors so multi-loop
/// vectors actually arise.
pub fn corpus_deep(seed: u64, n: usize) -> Vec<LoopNest> {
    (0..n)
        .map(|idx| {
            let mut rng = Rng::new(seed ^ (idx as u64).wrapping_mul(0xa076_1d64_78bd_642f));
            gen_deep_nest(&mut rng, &format!("deep{idx}"))
        })
        .collect()
}

fn gen_deep_nest(rng: &mut Rng, name: &str) -> LoopNest {
    let depth = rng.int(3, 5) as usize;
    // Per-loop trips: composite but small enough that the fuzz harness
    // can run every applicable vector through the interpreter.
    let trip = [12i64, 6, 4][depth - 3];
    let dim = trip + 4;
    let vars = ["N", "M", "K", "J", "I"];
    let vars = &vars[5 - depth..];
    match rng.int(0, 4) {
        // 3-d stencil over the innermost three loop variables; any outer
        // loops sweep independent planes.
        0 => {
            // `full` lists the loop variables innermost-first — the
            // stride-1 subscript order.
            let full: Vec<&str> = vars.iter().rev().copied().collect();
            let mut b = NestBuilder::new(name)
                .array("A", &vec![dim + 2; depth])
                .array("B", &vec![dim + 2; depth]);
            for v in vars {
                b = b.loop_(v, 1, trip);
            }
            let idx = full.join(",");
            // Three forward neighbours, one per innermost axis.
            let shifted = |axis: usize| -> String {
                let subs: Vec<String> = full
                    .iter()
                    .enumerate()
                    .map(|(i, v)| {
                        if i == axis {
                            format!("{v}+1")
                        } else {
                            v.to_string()
                        }
                    })
                    .collect();
                subs.join(",")
            };
            b.stmt(&format!(
                "B({idx}) = A({idx}) + A({}) + A({}) + A({})",
                shifted(0),
                shifted(1),
                shifted(2)
            ))
            .build()
        }
        // Tensor contraction: the second-innermost loop is the reduction.
        1 => {
            let inner = vars[depth - 1];
            let red = vars[depth - 2];
            let outs: Vec<&str> = vars[..depth - 2].to_vec();
            let mut target = vec![inner];
            target.extend(outs.iter().rev());
            let mut lhs_a = vec![inner, red];
            lhs_a.extend(outs.iter().rev().skip(1));
            let mut b = NestBuilder::new(name)
                .array("C", &vec![dim; target.len()])
                .array("A", &vec![dim; lhs_a.len()])
                .array("W", &[dim, dim]);
            for v in vars {
                b = b.loop_(v, 1, trip);
            }
            let t = target.join(",");
            b.stmt(&format!(
                "C({t}) = C({t}) + A({}) * W({red},{})",
                lhs_a.join(","),
                target[1]
            ))
            .build()
        }
        // Reduction into a lower-rank accumulator: inner loops stream,
        // outer loops address the target.
        2 => {
            let outs: Vec<&str> = vars[..depth - 2].iter().rev().copied().collect();
            let ins: Vec<&str> = vars[depth - 2..].to_vec();
            let mut b = NestBuilder::new(name)
                .array("S", &vec![dim; outs.len()])
                .array("X", &vec![dim; ins.len()]);
            for v in vars {
                b = b.loop_(v, 1, trip);
            }
            b.stmt(&format!(
                "S({}) = S({}) + X({})",
                outs.join(","),
                outs.join(","),
                ins.join(",")
            ))
            .build()
        }
        // Elementwise deep sweep across two arrays.
        3 => {
            let full: Vec<&str> = vars.iter().rev().copied().collect();
            let idx = full.join(",");
            let mut b = NestBuilder::new(name)
                .array("P", &vec![dim; depth])
                .array("Q", &vec![dim; depth]);
            for v in vars {
                b = b.loop_(v, 1, trip);
            }
            b.stmt(&format!("P({idx}) = Q({idx}) * 2.0 + 1.0")).build()
        }
        // In-place update: flow/anti/output dependences, no input deps.
        _ => {
            let full: Vec<&str> = vars.iter().rev().copied().collect();
            let idx = full.join(",");
            let mut b = NestBuilder::new(name).array("A", &vec![dim; depth]);
            for v in vars {
                b = b.loop_(v, 1, trip);
            }
            b.stmt(&format!("A({idx}) = A({idx}) * 0.99")).build()
        }
    }
}

/// Generates a whole corpus of `n` routines from one seed.
///
/// # Example
///
/// ```
/// let routines = ujam_kernels::corpus(1997, 50);
/// assert_eq!(routines.len(), 50);
/// // Deterministic: the same seed yields the same corpus.
/// assert_eq!(ujam_kernels::corpus(1997, 50)[7], routines[7]);
/// ```
pub fn corpus(seed: u64, n: usize) -> Vec<LoopNest> {
    (0..n).map(|i| corpus_routine(seed, i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic() {
        let a = corpus(42, 30);
        let b = corpus(42, 30);
        assert_eq!(a, b);
        let c = corpus(43, 30);
        assert_ne!(a, c);
    }

    #[test]
    fn corpus_routines_validate() {
        for nest in corpus(7, 100) {
            nest.validate().expect("generated routine must validate");
            assert!(nest.depth() >= 2);
            assert!(!nest.body().is_empty());
        }
    }

    #[test]
    fn subroutines_hold_several_nests() {
        let subs = corpus_subroutines(5, 40);
        assert_eq!(subs.len(), 40);
        assert!(subs.iter().all(|s| (2..=10).contains(&s.len())));
        for s in &subs {
            for nest in s {
                nest.validate().expect("nest validates");
            }
        }
        // Deterministic.
        assert_eq!(corpus_subroutines(5, 40), subs);
    }

    #[test]
    fn deep_corpus_validates_spans_depths_and_is_deterministic() {
        let nests = corpus_deep(11, 60);
        assert_eq!(nests.len(), 60);
        let mut seen = [false; 3];
        for nest in &nests {
            nest.validate().expect("deep nest validates");
            assert!((3..=5).contains(&nest.depth()), "{}", nest.name());
            seen[nest.depth() - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of depths 3, 4, 5 appear");
        assert_eq!(corpus_deep(11, 60), nests);
        assert_ne!(corpus_deep(12, 60), nests);
    }

    #[test]
    fn corpus_mixes_families() {
        let routines = corpus(1997, 200);
        let stencils = routines
            .iter()
            .filter(|n| n.name().starts_with("synth") && n.array("B").is_some() && n.depth() == 2)
            .count();
        let triple = routines.iter().filter(|n| n.depth() == 3).count();
        assert!(stencils > 0, "no stencils generated");
        assert!(triple > 0, "no linear-algebra routines generated");
    }
}
