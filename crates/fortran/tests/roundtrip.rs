//! Property-style test: `parse(emit(nest))` is the identity on
//! expressible nests.
//!
//! Triage note: originally `proptest`; the offline registry cannot serve
//! external crates, so the strategy is now a deterministic seeded
//! generator from the in-tree `ujam-rng` crate with the same coverage.

use ujam_fortran::{emit, parse};
use ujam_ir::{LoopNest, NestBuilder};
use ujam_rng::Rng;

/// Random nests within the front end's subset: 1–3 unit-step loops,
/// integer bounds, stencil/reduction statements.
fn expressible_nest(rng: &mut Rng) -> LoopNest {
    let depth = rng.int(1, 3) as usize;
    let n_offsets = rng.int(1, 4);
    let reduce = rng.chance(0.5);
    let vars = ["K", "J", "I"];
    let used = &vars[3 - depth..];
    let mut rhs = String::from("0.5");
    for _ in 0..n_offsets {
        let a = rng.int(0, 4);
        let b = rng.int(0, 4);
        match depth {
            1 => rhs.push_str(&format!(" + A(I+{a})")),
            _ => rhs.push_str(&format!(" + A(I+{a}, J+{b})")),
        }
    }
    let lhs = match (depth, reduce) {
        (1, _) => "B(I)".to_string(),
        (_, true) => "B(J, J)".to_string(),
        (_, false) => "B(I, J)".to_string(),
    };
    let mut builder = NestBuilder::new("PROP");
    builder = match depth {
        1 => builder.array("A", &[32]).array("B", &[32]),
        _ => builder.array("A", &[32, 32]).array("B", &[32, 32]),
    };
    for v in used {
        builder = builder.loop_(v, 1, 8);
    }
    builder.stmt(&format!("{lhs} = {rhs}")).build()
}

const CASES: usize = 64;

#[test]
fn emit_then_parse_is_identity() {
    let mut rng = Rng::new(0x3017);
    for _ in 0..CASES {
        let nest = expressible_nest(&mut rng);
        let src = emit(&nest);
        let back = parse(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        assert_eq!(back, nest);
    }
}

/// Emitted sources survive whitespace mangling and comment injection.
#[test]
fn parser_tolerates_formatting_noise() {
    let mut rng = Rng::new(0x4015e);
    for _ in 0..CASES {
        let nest = expressible_nest(&mut rng);
        let seed = rng.int(0, 999) as u64;
        let src = emit(&nest);
        let mut noisy = String::from("C generated header\n\n");
        for (i, line) in src.lines().enumerate() {
            if (seed as usize + i).is_multiple_of(3) {
                noisy.push_str("! noise\n");
            }
            // Vary indentation.
            noisy.push_str(&" ".repeat((seed as usize + i) % 7));
            noisy.push_str(line.trim_start());
            noisy.push('\n');
        }
        let back = parse(&noisy).unwrap_or_else(|e| panic!("{e}\n{noisy}"));
        assert_eq!(back, nest);
    }
}
