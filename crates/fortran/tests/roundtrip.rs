//! Property test: `parse(emit(nest))` is the identity on expressible nests.

use proptest::prelude::*;
use ujam_fortran::{emit, parse};
use ujam_ir::{LoopNest, NestBuilder};

/// Random nests within the front end's subset: 1–3 unit-step loops,
/// integer bounds, stencil/reduction statements.
fn expressible_nest() -> impl Strategy<Value = LoopNest> {
    (
        1usize..=3,
        proptest::collection::vec((0i64..=4, 0i64..=4), 1..=4),
        proptest::bool::ANY,
    )
        .prop_map(|(depth, offsets, reduce)| {
            let vars = ["K", "J", "I"];
            let used = &vars[3 - depth..];
            let mut rhs = String::from("0.5");
            for (a, b) in &offsets {
                match depth {
                    1 => rhs.push_str(&format!(" + A(I+{a})")),
                    _ => rhs.push_str(&format!(" + A(I+{a}, J+{b})")),
                }
            }
            let lhs = match (depth, reduce) {
                (1, _) => "B(I)".to_string(),
                (_, true) => "B(J, J)".to_string(),
                (_, false) => "B(I, J)".to_string(),
            };
            let mut builder = NestBuilder::new("PROP");
            builder = match depth {
                1 => builder.array("A", &[32]).array("B", &[32]),
                _ => builder.array("A", &[32, 32]).array("B", &[32, 32]),
            };
            for v in used {
                builder = builder.loop_(v, 1, 8);
            }
            builder.stmt(&format!("{lhs} = {rhs}")).build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn emit_then_parse_is_identity(nest in expressible_nest()) {
        let src = emit(&nest);
        let back = parse(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        prop_assert_eq!(back, nest);
    }

    /// Emitted sources survive whitespace mangling and comment injection.
    #[test]
    fn parser_tolerates_formatting_noise(nest in expressible_nest(), seed in 0u64..1000) {
        let src = emit(&nest);
        let mut noisy = String::from("C generated header\n\n");
        for (i, line) in src.lines().enumerate() {
            if (seed as usize + i) % 3 == 0 {
                noisy.push_str("! noise\n");
            }
            // Vary indentation.
            noisy.push_str(&" ".repeat((seed as usize + i) % 7));
            noisy.push_str(line.trim_start());
            noisy.push('\n');
        }
        let back = parse(&noisy).unwrap_or_else(|e| panic!("{e}\n{noisy}"));
        prop_assert_eq!(back, nest);
    }
}
