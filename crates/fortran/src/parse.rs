//! The DO-nest parser.

use std::fmt;
use ujam_ir::{LoopNest, NestBuilder};

/// A parse failure, with the 1-based source line it occurred on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// One meaningful source line.
#[derive(Debug)]
enum Line {
    Subroutine(String),
    Dimension(Vec<(String, Vec<i64>)>),
    /// `DO [label] var = lo, hi[, step]`
    Do {
        label: Option<String>,
        var: String,
        lo: i64,
        hi: i64,
        step: i64,
    },
    EndDo,
    /// `<label> CONTINUE`
    Continue(String),
    Assign(String),
    End,
}

/// Parses a subroutine holding one perfect `DO` nest into a validated
/// loop nest.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line for anything outside
/// the supported subset (see the crate docs).
///
/// # Example
///
/// ```
/// let src = "
///       SUBROUTINE INTRO
///       DIMENSION A(512), B(512)
///       DO 10 J = 1, 512
///       DO 10 I = 1, 512
///       A(J) = A(J) + B(I)
///  10   CONTINUE
///       END";
/// let nest = ujam_fortran::parse(src).unwrap();
/// assert_eq!(nest.name(), "INTRO");
/// assert_eq!(nest.depth(), 2);
/// assert_eq!(nest.flops_per_iter(), 1);
/// ```
pub fn parse(source: &str) -> Result<LoopNest, ParseError> {
    let mut name = "nest".to_string();
    let mut arrays: Vec<(String, Vec<i64>)> = Vec::new();
    // Open DO loops: (label, var, lo, hi, step, line).
    let mut open: Vec<(Option<String>, String, i64, i64, i64, usize)> = Vec::new();
    let mut closed = 0usize; // loops fully closed so far
    let mut body: Vec<(String, usize)> = Vec::new();
    let mut max_depth = 0usize;

    for (idx, raw) in source.lines().enumerate() {
        let lineno = idx + 1;
        let Some(line) = classify(raw, lineno)? else {
            continue;
        };
        match line {
            Line::Subroutine(n) => name = n,
            Line::Dimension(mut decls) => arrays.append(&mut decls),
            Line::Do {
                label,
                var,
                lo,
                hi,
                step,
            } => {
                if step != 1 {
                    return Err(err(lineno, "only unit-step DO loops are supported"));
                }
                if !body.is_empty() || closed > 0 {
                    return Err(err(
                        lineno,
                        "imperfect nest: DO after statements or a closed loop",
                    ));
                }
                open.push((label, var, lo, hi, step, lineno));
                max_depth = max_depth.max(open.len());
            }
            Line::EndDo => {
                let Some(_) = open.pop() else {
                    return Err(err(lineno, "ENDDO without an open DO"));
                };
                closed += 1;
            }
            Line::Continue(label) => {
                // A labeled CONTINUE closes every open loop bearing that
                // label (the shared-label Fortran idiom).
                let before = open.len();
                while open
                    .last()
                    .is_some_and(|(l, ..)| l.as_deref() == Some(label.as_str()))
                {
                    open.pop();
                    closed += 1;
                }
                if open.len() == before {
                    return Err(err(
                        lineno,
                        format!("CONTINUE label {label} matches no open DO"),
                    ));
                }
            }
            Line::Assign(text) => {
                if open.is_empty() {
                    return Err(err(lineno, "assignment outside any DO loop"));
                }
                if open.len() != max_depth {
                    return Err(err(
                        lineno,
                        "imperfect nest: statement above the innermost loop",
                    ));
                }
                body.push((text, lineno));
            }
            Line::End => break,
        }
    }
    if !open.is_empty() {
        return Err(err(
            open.last().expect("non-empty").5,
            "unterminated DO loop",
        ));
    }

    // Assemble through the validating builder.
    let mut b = NestBuilder::new(&name);
    for (arr, dims) in &arrays {
        b = b.array(arr, dims);
    }
    // `open` has been drained; rebuild loop order from a second pass is
    // unnecessary — we recorded loops as they opened.
    b = rebuilt_loops(source)?
        .into_iter()
        .fold(b, |b, (var, lo, hi)| b.loop_(&var, lo, hi));
    for (text, lineno) in &body {
        b = b
            .try_stmt(text)
            .map_err(|e| err(*lineno, format!("bad assignment: {e}")))?;
    }
    b.try_build()
        .map_err(|e| err(0, format!("invalid nest: {e}")))
}

/// Second tiny pass extracting the loop headers in order (keeps the main
/// pass simple).
fn rebuilt_loops(source: &str) -> Result<Vec<(String, i64, i64)>, ParseError> {
    let mut loops = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        if let Some(Line::Do { var, lo, hi, .. }) = classify(raw, idx + 1)? {
            loops.push((var, lo, hi));
        }
    }
    Ok(loops)
}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Classifies one raw source line; `None` for blanks and comments.
fn classify(raw: &str, lineno: usize) -> Result<Option<Line>, ParseError> {
    // Fixed-form comments: C or * in column 1; free-form `!`.
    if matches!(raw.chars().next(), Some('C') | Some('c') | Some('*'))
        && raw.len() > 1
        && raw.chars().nth(1).is_some_and(|c| c.is_whitespace())
    {
        return Ok(None);
    }
    let no_comment = match raw.find('!') {
        Some(p) => &raw[..p],
        None => raw,
    };
    let text = no_comment.trim();
    if text.is_empty() {
        return Ok(None);
    }
    let upper = text.to_ascii_uppercase();

    // `<label> CONTINUE`
    if let Some(rest) = upper.strip_suffix("CONTINUE") {
        let label = rest.trim();
        if !label.is_empty() && label.chars().all(|c| c.is_ascii_digit()) {
            return Ok(Some(Line::Continue(label.to_string())));
        }
        if label.is_empty() {
            return Ok(None); // bare CONTINUE is a no-op
        }
    }
    if upper == "ENDDO" || upper == "END DO" {
        return Ok(Some(Line::EndDo));
    }
    if upper == "END" || upper.starts_with("END ") && !upper.starts_with("END DO") {
        return Ok(Some(Line::End));
    }
    if let Some(rest) = upper.strip_prefix("SUBROUTINE") {
        let name = rest.trim().split('(').next().unwrap_or("").trim();
        if name.is_empty() {
            return Err(err(lineno, "SUBROUTINE without a name"));
        }
        return Ok(Some(Line::Subroutine(name.to_string())));
    }
    if let Some(rest) = upper.strip_prefix("PROGRAM") {
        return Ok(Some(Line::Subroutine(rest.trim().to_string())));
    }
    if let Some(rest) = upper.strip_prefix("DIMENSION") {
        return parse_dimension(rest, lineno).map(|d| Some(Line::Dimension(d)));
    }
    if upper.starts_with("DO") && upper.len() > 2 && !upper.as_bytes()[2].is_ascii_alphanumeric() {
        return parse_do(&upper[2..], lineno).map(Some);
    }
    // Anything with '=' is an assignment statement (kept in original case
    // so array and index names round-trip).
    if text.contains('=') {
        return Ok(Some(Line::Assign(text.to_string())));
    }
    Err(err(lineno, format!("unrecognized statement {text:?}")))
}

/// Parses `A(100,100), B(240)` declaration lists.
fn parse_dimension(rest: &str, lineno: usize) -> Result<Vec<(String, Vec<i64>)>, ParseError> {
    let mut out = Vec::new();
    let mut s = rest.trim();
    while !s.is_empty() {
        let open = s
            .find('(')
            .ok_or_else(|| err(lineno, "DIMENSION entry missing '('"))?;
        let name = s[..open].trim().trim_start_matches(',').trim();
        if name.is_empty() {
            return Err(err(lineno, "DIMENSION entry missing a name"));
        }
        let close = s
            .find(')')
            .ok_or_else(|| err(lineno, "DIMENSION entry missing ')'"))?;
        let dims: Result<Vec<i64>, _> = s[open + 1..close]
            .split(',')
            .map(|d| d.trim().parse::<i64>())
            .collect();
        let dims = dims.map_err(|_| err(lineno, "array extents must be integer constants"))?;
        out.push((name.to_string(), dims));
        s = s[close + 1..].trim().trim_start_matches(',').trim();
    }
    Ok(out)
}

/// Parses ` [label] VAR = lo, hi[, step]` after the `DO` keyword.
fn parse_do(rest: &str, lineno: usize) -> Result<Line, ParseError> {
    let mut s = rest.trim();
    let mut label = None;
    // Optional numeric label.
    let digits: String = s.chars().take_while(|c| c.is_ascii_digit()).collect();
    if !digits.is_empty() {
        label = Some(digits.clone());
        s = s[digits.len()..].trim();
    }
    let eq = s.find('=').ok_or_else(|| err(lineno, "DO without '='"))?;
    let var = s[..eq].trim().to_string();
    if var.is_empty() || !var.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Err(err(lineno, format!("bad DO variable {var:?}")));
    }
    let bounds: Vec<&str> = s[eq + 1..].split(',').map(str::trim).collect();
    if bounds.len() < 2 || bounds.len() > 3 {
        return Err(err(lineno, "DO bounds must be 'lo, hi' or 'lo, hi, step'"));
    }
    let parse_int = |t: &str| {
        t.parse::<i64>()
            .map_err(|_| err(lineno, format!("DO bound {t:?} is not an integer constant")))
    };
    Ok(Line::Do {
        label,
        var,
        lo: parse_int(bounds[0])?,
        hi: parse_int(bounds[1])?,
        step: if bounds.len() == 3 {
            parse_int(bounds[2])?
        } else {
            1
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const DMXPY: &str = "
      SUBROUTINE DMXPY
      DIMENSION Y(240), X(240), M(240,240)
      DO J = 1, 240
        DO I = 1, 240
          Y(I) = Y(I) + X(J) * M(I,J)
        ENDDO
      ENDDO
      END
";

    #[test]
    fn parses_the_basic_form() {
        let nest = parse(DMXPY).unwrap();
        assert_eq!(nest.name(), "DMXPY");
        assert_eq!(nest.loop_vars(), vec!["J", "I"]);
        assert_eq!(nest.refs().len(), 4);
        assert_eq!(nest.flops_per_iter(), 2);
    }

    #[test]
    fn parses_shared_label_continue() {
        let src = "
C     the paper's intro loop, fixed-form flavour
      DIMENSION A(512), B(512)
      DO 10 J = 1, 512
      DO 10 I = 1, 512
      A(J) = A(J) + B(I)
 10   CONTINUE
      END";
        let nest = parse(src).unwrap();
        assert_eq!(nest.depth(), 2);
        assert_eq!(nest.body().len(), 1);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let src = "
! free-form comment
C fixed comment
* another
      DIMENSION A(8)
      DO I = 1, 8   ! trailing comment
        A(I) = 2.0
      END DO
      END";
        let nest = parse(src).unwrap();
        assert_eq!(nest.iterations(), 8);
    }

    #[test]
    fn rejects_imperfect_nests() {
        let src = "
      DIMENSION A(8), S(8)
      DO J = 1, 8
        S(J) = 0.0
        DO I = 1, 8
          A(I) = A(I) + 1.0
        ENDDO
      ENDDO
      END";
        let e = parse(src).unwrap_err();
        assert!(e.message.contains("imperfect"), "{e}");
    }

    #[test]
    fn rejects_symbolic_bounds_and_bad_statements() {
        let e = parse("      DO I = 1, N\n      ENDDO\n      END").unwrap_err();
        assert!(e.message.contains("integer constant"), "{e}");

        let e = parse("      CALL FOO\n      END").unwrap_err();
        assert!(e.message.contains("unrecognized"), "{e}");
    }

    #[test]
    fn rejects_unbalanced_loops() {
        let e = parse("      DIMENSION A(4)\n      DO I = 1, 4\n      A(I) = 1.0\n      END")
            .unwrap_err();
        assert!(e.message.contains("unterminated"), "{e}");

        let e = parse("      ENDDO\n      END").unwrap_err();
        assert!(e.message.contains("without an open DO"), "{e}");
    }

    #[test]
    fn rejects_undeclared_arrays_via_validation() {
        let e = parse("      DO I = 1, 4\n      A(I) = 1.0\n      ENDDO\n      END").unwrap_err();
        assert!(e.message.contains("undeclared"), "{e}");
    }

    #[test]
    fn non_unit_step_is_rejected() {
        let src = "
      DIMENSION A(8)
      DO I = 1, 8, 2
        A(I) = 1.0
      ENDDO
      END";
        let e = parse(src).unwrap_err();
        assert!(e.message.contains("unit-step"), "{e}");
    }
}
