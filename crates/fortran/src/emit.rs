//! Rendering a loop nest back to (this subset of) Fortran.

use std::fmt::Write;
use ujam_ir::LoopNest;

/// Emits a nest as a Fortran subroutine: `SUBROUTINE`, `DIMENSION` lines,
/// the `DO` nest (via the IR's listing-style printer) and `END`.
///
/// `parse(emit(nest))` round-trips every nest the parser accepts with a
/// unit-step loop structure; nests that have already been unrolled carry
/// non-unit steps and are emitted for human consumption only (the parser
/// subset stops at unit steps, like the analysis itself).
///
/// # Example
///
/// ```
/// use ujam_ir::NestBuilder;
/// let nest = NestBuilder::new("SWEEP")
///     .array("A", &[8, 8])
///     .loop_("J", 1, 8).loop_("I", 1, 8)
///     .stmt("A(I,J) = A(I,J) * 2.0")
///     .build();
/// let src = ujam_fortran::emit(&nest);
/// assert!(src.contains("SUBROUTINE SWEEP"));
/// assert!(src.contains("DIMENSION A(8,8)"));
/// let back = ujam_fortran::parse(&src).unwrap();
/// assert_eq!(back, nest);
/// ```
pub fn emit(nest: &LoopNest) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "      SUBROUTINE {}", nest.name().to_ascii_uppercase());
    if !nest.arrays().is_empty() {
        let decls: Vec<String> = nest
            .arrays()
            .iter()
            .map(|a| {
                let dims: Vec<String> = a.dims().iter().map(|d| d.to_string()).collect();
                format!("{}({})", a.name(), dims.join(","))
            })
            .collect();
        let _ = writeln!(out, "      DIMENSION {}", decls.join(", "));
    }
    // The IR's Display already prints the DO nest in listing style.
    let _ = write!(out, "{nest}");
    let _ = writeln!(out, "      END");
    out
}

#[cfg(test)]
mod tests {
    use crate::parse;
    use ujam_ir::NestBuilder;

    #[test]
    fn round_trips_a_three_deep_nest() {
        let nest = NestBuilder::new("MM")
            .array("A", &[24, 24])
            .array("B", &[24, 24])
            .array("C", &[24, 24])
            .loop_("J", 1, 24)
            .loop_("K", 1, 24)
            .loop_("I", 1, 24)
            .stmt("C(I,J) = C(I,J) + A(I,K) * B(K,J)")
            .build();
        let src = crate::emit(&nest);
        assert_eq!(parse(&src).unwrap(), nest);
    }

    #[test]
    fn emits_parseable_kernel_sources() {
        // Spot check a couple of hand-built paper-style loops.
        for (name, stmt) in [
            (
                "JAC",
                "B(I,J) = 0.25 * (A(I-1,J) + A(I+1,J) + A(I,J-1) + A(I,J+1))",
            ),
            ("STR", "B(I,J) = A(2J-1,J) + 1.0"),
        ] {
            let nest = NestBuilder::new(name)
                .array("A", &[500, 64])
                .array("B", &[500, 64])
                .loop_("J", 2, 33)
                .loop_("I", 2, 33)
                .stmt(stmt)
                .build();
            let src = crate::emit(&nest);
            assert_eq!(parse(&src).unwrap(), nest, "{name}:\n{src}");
        }
    }
}
