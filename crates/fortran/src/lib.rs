//! A Fortran-77 subset front end for the `ujam` loop-nest IR.
//!
//! The paper's implementation lives inside Memoria, a Fortran
//! source-to-source transformer.  This crate restores the source-level
//! workflow for the subset the analysis actually consumes: a subroutine
//! declaring arrays with `DIMENSION` and containing one perfect nest of
//! constant-bound `DO` loops whose body is a sequence of assignments.
//!
//! ```fortran
//!       SUBROUTINE DMXPY
//!       DIMENSION Y(240), X(240), M(240,240)
//!       DO J = 1, 240
//!         DO I = 1, 240
//!           Y(I) = Y(I) + X(J) * M(I,J)
//!         ENDDO
//!       ENDDO
//!       END
//! ```
//!
//! [`parse`] turns such text into a validated [`LoopNest`]; [`emit`]
//! renders a nest back to compilable-looking Fortran.  `parse(emit(n))`
//! round-trips every nest this crate can express (a property test).
//!
//! Supported: free leading whitespace, `C`/`*`/`!` comments, blank lines,
//! case-insensitive keywords, optional `DO`-loop labels with matching
//! `<label> CONTINUE` terminators, `ENDDO`/`END DO`, integer loop bounds,
//! and the expression grammar of `ujam_ir::parse_expr`.  Not supported
//! (rejected with a clear error): symbolic bounds, imperfect nests,
//! non-unit steps, control flow, and statement continuation lines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod emit;
mod parse;

pub use emit::emit;
pub use parse::{parse, ParseError};

pub use ujam_ir::LoopNest;
