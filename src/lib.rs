//! # ujam — Unroll-and-Jam Using Uniformly Generated Sets
//!
//! A complete reproduction of Carr & Guan (MICRO 1997): unroll-and-jam
//! amounts computed from the Wolf–Lam linear-algebra reuse model instead
//! of a dependence graph bloated with input dependences.
//!
//! This facade crate re-exports the whole system:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`ir`] | `ujam-ir` | affine loop-nest IR, builder DSL, unroll-and-jam and scalar replacement |
//! | [`linalg`] | `ujam-linalg` | exact matrices, rationals, vector spaces, merge-equation solvers |
//! | [`dep`] | `ujam-dep` | dependence testing, graphs (with input-dep accounting), jam safety |
//! | [`reuse`] | `ujam-reuse` | uniformly generated sets, GTS/GSS partitions, Equation 1 |
//! | [`machine`] | `ujam-machine` | machine-balance models (DEC Alpha / HP PA-RISC presets) |
//! | [`core`] | `ujam-core` | the paper's tables (Figs. 2–5), loop balance, the optimizer, the brute-force baseline |
//! | [`sim`] | `ujam-sim` | cache + initiation-interval simulator standing in for the 1997 testbeds |
//! | [`kernels`] | `ujam-kernels` | the 19 Table 2 loops and the synthetic §5.1 corpus |
//! | [`fortran`] | `ujam-fortran` | a Fortran-77 DO-nest front end (parse + emit) |
//! | [`trace`] | `ujam-trace` | trace sinks, per-pass spans/counters, decision provenance, renderers |
//! | [`metrics`] | `ujam-metrics` | runtime metrics: counters, gauges, latency histograms, stats snapshots |
//! | [`serve`] | `ujam-serve` | the `ujam serve` daemon: batched NDJSON requests, deadlines, decision cache |
//!
//! # Quickstart
//!
//! ```
//! use ujam::ir::NestBuilder;
//! use ujam::machine::MachineModel;
//! use ujam::core::optimize;
//!
//! // DO J = 1, 2N ; DO I = 1, M ; A(J) = A(J) + B(I)   (§3.3)
//! let nest = NestBuilder::new("intro")
//!     .array("A", &[512]).array("B", &[512])
//!     .loop_("J", 1, 512).loop_("I", 1, 512)
//!     .stmt("A(J) = A(J) + B(I)")
//!     .build();
//!
//! let plan = optimize(&nest, &MachineModel::dec_alpha()).expect("valid nest");
//! println!("{}", plan.nest);          // the unrolled-and-jammed loop
//! assert!(plan.unroll[0] >= 1);       // J was unrolled
//! assert!(plan.predicted.balance <= plan.original.balance);
//! ```
//!
//! Whole suites go through the batch driver, which fans nests out across
//! scoped threads (one analysis context per nest):
//!
//! ```
//! use ujam::core::optimize_batch;
//! use ujam::machine::MachineModel;
//!
//! let nests: Vec<_> = ujam::kernels::kernels().iter().map(|k| k.nest()).collect();
//! let plans = optimize_batch(&nests, &MachineModel::dec_alpha());
//! assert!(plans.iter().all(|p| p.is_ok()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ujam_core as core;
pub use ujam_dep as dep;
pub use ujam_fortran as fortran;
pub use ujam_ir as ir;
pub use ujam_kernels as kernels;
pub use ujam_linalg as linalg;
pub use ujam_machine as machine;
pub use ujam_metrics as metrics;
pub use ujam_reuse as reuse;
pub use ujam_serve as serve;
pub use ujam_sim as sim;
pub use ujam_trace as trace;
