//! `ujam` — command-line driver for the unroll-and-jam reproduction.
//!
//! ```text
//! ujam list                          # the 19 Table 2 kernels
//! ujam show <loop>                   # print a loop nest
//! ujam deps <loop>                   # dependence graph summary
//! ujam tables <loop> [bound]         # the precomputed unroll tables
//! ujam optimize <loop> [options]     # choose & apply unroll amounts
//! ujam simulate <loop> [options]     # simulate original vs optimized
//! ujam profile <loop> [options]      # reuse-distance report (JSON)
//! ujam emit <loop>                   # render as Fortran source
//! ujam schedule <loop> [options]     # list-schedule the optimized body
//! ujam serve [options]               # NDJSON optimization daemon
//! ujam request --socket PATH <json>  # send request lines to a daemon
//! ujam request --tcp ADDR <json>...  # same over TCP (handshakes first)
//! ujam stats --socket PATH [--json]  # query a daemon's metrics snapshot
//! ujam stats --tcp ADDR [--json]     # same over TCP
//! ujam flight --socket PATH          # dump the daemon's flight recorder
//! ujam flight --tcp ADDR [--slow-only] [--json]
//! ```
//!
//! `<loop>` is a Table 2 kernel name (`ujam list`) or a path to a Fortran
//! source file (`.f`, `.f77`, `.for`) holding one DO nest.
//!
//! Options: `--machine alpha|parisc|prefetch`, `--model cache|allhits`.
//! `optimize` additionally takes `--cost-model analytic|profiled|blended`
//! (which cache-cost backend scores candidates), `--explain`
//! (per-candidate decision provenance) and
//! `--trace`/`--trace=json`/`--trace=chrome` (pass spans, cache
//! counters, events; the JSON form prints only the machine-readable
//! document, the chrome form a Chrome trace-event timeline loadable in
//! Perfetto or `chrome://tracing`).
//!
//! `profile` runs the nest under the interpreter's memory tap and emits
//! a versioned JSON reuse-distance report: per-array and aggregate
//! stack-distance histograms, cold misses, and miss rates under both a
//! fully-associative and the machine's set-associative cache geometry
//! (overridable with `--cache-geometry CAPACITY:LINE:WAYS`).
//!
//! `serve` always records runtime metrics (counters, gauges, latency
//! histograms) into a `ujam-metrics` registry; `{"cmd":"stats"}` admin
//! lines — or the `ujam stats` subcommand — return a snapshot, and
//! `--metrics-interval SECS` additionally prints one JSON snapshot per
//! interval to stderr.

use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::sync::Arc;
use ujam::core::{
    optimize_costed, optimize_with, tables::CostTables, BalanceModel, CancelToken, CostModelKind,
    SearchConfig, UnrollSpace,
};
use ujam::dep::{safe_unroll_bounds, DepGraph, DepKind};
use ujam::ir::transform::scalar_replacement;
use ujam::ir::LoopNest;
use ujam::kernels::{deep_kernel, kernel, kernels};
use ujam::machine::MachineModel;
use ujam::metrics::{MetricsHandle, MetricsRegistry};
use ujam::sim::{profile_nest_with_geometry, simulate, CacheGeometry};
use ujam::trace::json::{self, Value};
use ujam::trace::{ChromeTraceRenderer, CollectingSink};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  ujam list
  ujam show <loop>
  ujam deps <loop>
  ujam tables <loop> [bound]
  ujam optimize <loop> [--machine alpha|parisc|prefetch] [--model cache|allhits]
                       [--cost-model analytic|profiled|blended]
                       [--explain] [--trace[=json|chrome]]
                       [--max-unroll-loops K] [--code-budget B]
  ujam simulate <loop> [--machine alpha|parisc|prefetch] [--model cache|allhits]
  ujam profile <loop> | --kernel NAME [--machine alpha|parisc|prefetch]
                       [--cache-geometry CAPACITY:LINE:WAYS] [--profile-out PATH]
  ujam emit <loop>
  ujam schedule <loop> [--machine alpha|parisc|prefetch] [--model cache|allhits]
  ujam serve [--workers N] [--batch N] [--cache N] [--shards N]
             [--socket PATH] [--tcp ADDR] [--max-queue N] [--max-conns N]
             [--max-inflight N] [--read-timeout-ms MS]
             [--flight-capacity N] [--slow-ms MS] [--trace-chrome PATH]
             [--trace[=json]] [--metrics-interval SECS]
  ujam request (--socket PATH | --tcp ADDR) [--show-hello] <json-line>...
  ujam stats (--socket PATH | --tcp ADDR) [--json] [--series] [--verbose]
  ujam flight (--socket PATH | --tcp ADDR) [--slow-only] [--json]

<loop> is a kernel name from `ujam list`, a deep register-tiling kernel
(stencil3d, contract3, tensor4, assemble4, bmm4, bcontract5), or a
Fortran file (.f/.f77/.for) holding one DO nest.

`optimize` searches unroll vectors over up to K outer loops
(--max-unroll-loops, default 2 as in the paper; 0 = unbounded) and can
cap unrolled body size at B statements (--code-budget).  With
--cost-model profiled (or blended) each candidate's cache-line figure is
measured by the reuse-distance profiler instead of (or averaged with)
the paper's Eq. 1 prediction — materially slower, intended for studies.

`profile` interprets the nest with a memory-access tap and prints a
versioned JSON reuse-distance report (stack-distance histograms per
array and aggregate, cold/capacity/conflict misses, miss rates) to
stdout, or to PATH with --profile-out.  The cache geometry defaults to
the machine's; override it with --cache-geometry, e.g. 8192:32:1.

`serve` reads one JSON request per line from stdin and writes one JSON
reply per line to stdout; see the ujam-serve crate docs for the
protocol.  With --socket and/or --tcp it instead serves connections on
those listeners through a poll(2) event loop: nonblocking sockets, a
bounded worker queue (--max-queue; full = structured `overloaded`
replies with retry_ms), per-connection in-flight caps (--max-inflight),
a connection cap (--max-conns), idle/slow-loris read timeouts
(--read-timeout-ms, default 30000), and an N-way content-hash-sharded
decision cache (--shards).  TCP clients must open with the versioned
handshake {\"cmd\":\"hello\",\"version\":1}.  `--tcp 127.0.0.1:0`
picks a free port; the bound address is announced on stderr as
`serve: tcp listening on ADDR`.  A {\"cmd\":\"shutdown\"} admin line
stops the daemon cleanly.  With --trace, service counters are printed
to stderr on shutdown.  Runtime metrics are always recorded;
--metrics-interval prints one JSON snapshot per interval to stderr.

Every reactor request gets a lifecycle timeline (trace id, per-edge
monotonic stamps: framed, enqueued, dequeued, cache probe, analysis,
reply flushed) kept in an in-daemon flight recorder: a ring of the last
N timelines (--flight-capacity, default 1024) plus a separate ring of
anomalous requests (latency over --slow-ms, default 100; deadline hits;
sheds; frame errors) with structured reasons.  Requests carrying
\"trace\":true get their trace id echoed back as a trailing trace_id
reply field.  --trace-chrome writes every retained timeline as a Chrome
trace-event file on shutdown (loadable in Perfetto).

`request` sends raw NDJSON request lines to a serving daemon (Unix
socket or TCP; over TCP the handshake is performed first and its ack
printed only with --show-hello) and prints one reply line per request.
`stats` asks the daemon for its metrics snapshot ({\"cmd\":\"stats\"})
and renders it as a table, or as the raw versioned JSON snapshot with
--json.  Sharded-cache counters are rolled up into one
serve.cache.total line (per-shard lines return with --verbose).  With
--series the daemon also returns its time-series ring — windowed
counter deltas, derived rates (reqs/s, hit-rate, shed/s), queue-depth
peaks, and per-histogram max-latency exemplars tagged with trace ids —
rendered as a table, or as the raw series document with --json.
`flight` asks for the flight recorder ({\"cmd\":\"flight\"}) and renders
each retained timeline with per-edge durations; --slow-only limits the
dump to the anomaly ring, --json prints the versioned document.";

fn run(args: &[String]) -> Result<(), String> {
    let mut it = args.iter();
    let cmd = it.next().ok_or("missing command")?;
    match cmd.as_str() {
        "list" => {
            println!("{:>3} {:10} description", "#", "name");
            for k in kernels() {
                println!("{:>3} {:10} {}", k.num, k.name, k.description);
            }
            Ok(())
        }
        "show" => {
            let nest = lookup(it.next())?;
            print!("{nest}");
            Ok(())
        }
        "emit" => {
            let nest = lookup(it.next())?;
            print!("{}", ujam::fortran::emit(&nest));
            Ok(())
        }
        "deps" => {
            let nest = lookup(it.next())?;
            let g = DepGraph::build(&nest);
            println!("dependences of {}:", nest.name());
            for kind in [
                DepKind::True,
                DepKind::Anti,
                DepKind::Output,
                DepKind::Input,
            ] {
                println!("  {kind}: {}", g.count(kind));
            }
            let s = g.stats();
            println!(
                "  storage: {} bytes with input deps, {} without ({}% saved)",
                s.bytes_all,
                s.bytes_no_input,
                (100.0 * (1.0 - s.bytes_no_input as f64 / s.bytes_all.max(1) as f64)).round()
            );
            println!("  safe unroll bounds: {:?}", safe_unroll_bounds(&nest, &g));
            Ok(())
        }
        "tables" => {
            let nest = lookup(it.next())?;
            let bound: u32 = it
                .next()
                .map(|b| b.parse().map_err(|_| "bound must be a number".to_string()))
                .transpose()?
                .unwrap_or(4);
            let g = DepGraph::build(&nest);
            let bounds = safe_unroll_bounds(&nest, &g);
            let loop_idx = (0..nest.depth() - 1)
                .find(|&l| bounds[l] >= 1)
                .ok_or("no loop of this kernel can be jammed")?;
            let space = UnrollSpace::new(nest.depth(), &[loop_idx], bound);
            let ct = CostTables::build(&nest, &space, 4);
            println!(
                "tables for {} over loop {} (bound {bound}, line = 4 elements):",
                nest.name(),
                nest.loops()[loop_idx].var()
            );
            println!(
                "{:>3} {:>7} {:>7} {:>7} {:>9} {:>9}",
                "u", "flops", "loads", "stores", "lines/it", "registers"
            );
            for u in space.offsets() {
                println!(
                    "{:>3} {:>7} {:>7} {:>7} {:>9.3} {:>9}",
                    u[0],
                    ct.flops(&u),
                    ct.loads(&u),
                    ct.stores(&u),
                    ct.cache_lines(&u),
                    ct.registers(&u)
                );
            }
            Ok(())
        }
        "optimize" => {
            let nest = lookup(it.next())?;
            let opts = optimize_options(it)?;
            let (machine, model) = (&opts.machine, opts.model);
            let sink = CollectingSink::new();
            let plan = optimize_costed(
                &nest,
                machine,
                model,
                opts.cost,
                if opts.observing() {
                    &sink
                } else {
                    ujam::trace::null_sink()
                },
                CancelToken::never(),
                MetricsHandle::disabled(),
                opts.config,
            )
            .map_err(|e| e.to_string())?;
            let trace = sink.take();
            if opts.trace == TraceMode::Json {
                // Machine-readable mode: the JSON document is the whole
                // output, so downstream tools can parse stdout as-is.
                println!("{}", trace.render_json());
                return Ok(());
            }
            if opts.trace == TraceMode::Chrome {
                println!("{}", ChromeTraceRenderer::render(&trace));
                return Ok(());
            }
            println!(
                "machine {} (balance {}), model {:?}, cost model {}",
                machine.name(),
                machine.balance(),
                model,
                opts.cost.as_str()
            );
            println!("chosen unroll vector: {:?}", plan.unroll);
            println!(
                "balance {:.3} -> {:.3}; memory ops {} -> {}; flops {} -> {}; registers {}",
                plan.original.balance,
                plan.predicted.balance,
                plan.original.memory_ops,
                plan.predicted.memory_ops,
                plan.original.flops,
                plan.predicted.flops,
                plan.predicted.registers
            );
            // `render_human` already includes the explain tables, so
            // only render them separately when --trace is off.
            if opts.explain && opts.trace != TraceMode::Human {
                println!();
                print!("{}", trace.render_explain_human());
            }
            if opts.trace == TraceMode::Human {
                println!();
                print!("{}", trace.render_human());
            }
            println!("\ntransformed loop:\n{}", plan.nest);
            let replaced = scalar_replacement(&plan.nest);
            println!("after scalar replacement:\n{}", replaced.nest);
            Ok(())
        }
        "profile" => {
            let opts = profile_options(it)?;
            let nest = lookup(opts.nest.as_ref())?;
            let geometry = match opts.geometry {
                Some(g) => g,
                None => CacheGeometry::for_machine(&opts.machine),
            };
            let report = profile_nest_with_geometry(&nest, geometry);
            let rendered = report.render_json();
            match &opts.out {
                Some(path) => {
                    std::fs::write(path, format!("{rendered}\n"))
                        .map_err(|e| format!("cannot write {path:?}: {e}"))?;
                    eprintln!(
                        "wrote reuse report for {} ({} accesses, sa miss rate {:.2}%) to {path}",
                        report.nest,
                        report.accesses,
                        100.0 * report.sa_miss_rate()
                    );
                }
                None => println!("{rendered}"),
            }
            Ok(())
        }
        "schedule" => {
            let nest = lookup(it.next())?;
            let (machine, model) = options(it)?;
            let plan = optimize_with(&nest, &machine, model).map_err(|e| e.to_string())?;
            let replaced = scalar_replacement(&plan.nest);
            let sched = ujam::sim::listsched::schedule_body(&replaced.nest, &machine);
            println!(
                "{} on {}: unroll {:?}, body of {} ops",
                nest.name(),
                machine.name(),
                plan.unroll,
                sched.ops.len()
            );
            use ujam::sim::listsched::OpKind;
            println!(
                "loads {}  stores {}  flops {}  makespan {} cycles",
                sched.count(OpKind::Load),
                sched.count(OpKind::Store),
                sched.count(OpKind::Flop),
                sched.makespan
            );
            let copies = plan.unroll.iter().map(|&u| u as u64 + 1).product::<u64>();
            println!(
                "per original iteration: {:.2} cycles (list-scheduled body; software pipelining reaches the II bound)",
                sched.makespan as f64 / copies as f64
            );
            Ok(())
        }
        "simulate" => {
            let nest = lookup(it.next())?;
            let (machine, model) = options(it)?;
            let plan = optimize_with(&nest, &machine, model).map_err(|e| e.to_string())?;
            let before = simulate(&nest, &machine);
            let after = simulate(&plan.nest, &machine);
            println!(
                "{} on {} ({:?} model): unroll {:?}",
                nest.name(),
                machine.name(),
                model,
                plan.unroll
            );
            println!(
                "original:  {:>12.0} cycles  II {:>5.2}  miss rate {:>5.1}%",
                before.cycles,
                before.ii,
                100.0 * before.miss_rate()
            );
            println!(
                "optimized: {:>12.0} cycles  II {:>5.2}  miss rate {:>5.1}%",
                after.cycles,
                after.ii,
                100.0 * after.miss_rate()
            );
            println!("speedup:   {:.2}x", before.cycles / after.cycles);
            Ok(())
        }
        "serve" => {
            let opts = serve_options(it)?;
            let sink = CollectingSink::new();
            let tracing = opts.trace != TraceMode::Off;
            // Metrics are always on: the registry is cheap when idle and
            // `{"cmd":"stats"}` should answer without a restart.
            let registry = Arc::new(MetricsRegistry::new());
            if let Some(secs) = opts.metrics_interval {
                let registry = Arc::clone(&registry);
                // Detached: dies with the process.  Replies own stdout,
                // so periodic snapshots go to stderr, one line each.
                std::thread::spawn(move || loop {
                    std::thread::sleep(std::time::Duration::from_secs(secs));
                    eprintln!("{}", registry.snapshot().render_json());
                });
            }
            let server = ujam::serve::Server::with_metrics(
                opts.cfg,
                if tracing {
                    &sink as &dyn ujam::trace::TraceSink
                } else {
                    ujam::trace::null_sink()
                },
                MetricsHandle::new(Arc::clone(&registry)),
            );
            let result = if opts.tcp.is_some() || opts.socket.is_some() {
                bind_transports(&opts).and_then(|transports| {
                    server
                        .run_reactor(transports, opts.rcfg)
                        .map_err(|e| format!("serve: {e}"))
                })
            } else {
                let input = std::io::BufReader::new(std::io::stdin());
                server
                    .run(input, &mut std::io::stdout().lock())
                    .map_err(|e| format!("serve: {e}"))
            };
            // Replies own stdout, so shutdown telemetry goes to stderr.
            if tracing {
                let trace = sink.take();
                match opts.trace {
                    TraceMode::Json => eprintln!("{}", trace.render_json()),
                    _ => eprint!("{}", trace.render_human()),
                }
            }
            if opts.metrics_interval.is_some() {
                eprintln!("{}", registry.snapshot().render_json());
            }
            if let Some(path) = &opts.trace_chrome {
                // Every retained timeline becomes a span group under
                // nest `req-<trace_id>` — the same renderer the
                // optimizer's `--trace=chrome` uses.
                let timelines = server.flight().all_timelines();
                let mut flight_trace = ujam::trace::Trace::new(Vec::new());
                for t in &timelines {
                    flight_trace.extend(t.to_trace());
                }
                let doc = ChromeTraceRenderer::render(&flight_trace);
                match std::fs::write(path, format!("{doc}\n")) {
                    Ok(()) => {
                        eprintln!(
                            "serve: wrote {} flight timelines to {path}",
                            timelines.len()
                        )
                    }
                    Err(e) => eprintln!("serve: cannot write {path:?}: {e}"),
                }
            }
            result
        }
        "request" => {
            let (endpoint, rest) = endpoint_options(it)?;
            let mut show_hello = false;
            let mut lines = Vec::new();
            for arg in rest {
                match arg.as_str() {
                    "--show-hello" => show_hello = true,
                    _ => lines.push(arg),
                }
            }
            if lines.is_empty() {
                return Err("request needs at least one JSON line to send".into());
            }
            let exchange = daemon_exchange(&endpoint, &lines)?;
            if show_hello {
                if let Some(hello) = &exchange.hello {
                    println!("{hello}");
                }
            }
            for reply in &exchange.replies {
                println!("{reply}");
            }
            Ok(())
        }
        "stats" => {
            let (endpoint, rest) = endpoint_options(it)?;
            let mut json_out = false;
            let mut series = false;
            let mut verbose = false;
            for arg in &rest {
                match arg.as_str() {
                    "--json" => json_out = true,
                    "--series" => series = true,
                    "--verbose" => verbose = true,
                    _ => {
                        return Err(
                            "stats takes only --socket/--tcp, --json, --series, and --verbose"
                                .into(),
                        )
                    }
                }
            }
            let line = if series {
                "{\"id\":\"stats-cli\",\"cmd\":\"stats\",\"series\":true}"
            } else {
                "{\"id\":\"stats-cli\",\"cmd\":\"stats\"}"
            };
            let exchange = daemon_exchange(&endpoint, &[line.to_string()])?;
            let reply = exchange
                .replies
                .first()
                .ok_or("daemon closed the connection without replying")?
                .clone();
            let parsed =
                json::parse(&reply).map_err(|e| format!("daemon sent unparsable reply: {e}"))?;
            if parsed.get("ok") != Some(&Value::Bool(true)) {
                return Err(format!("daemon refused the stats query: {reply}"));
            }
            let stats = parsed
                .get("stats")
                .ok_or_else(|| format!("reply has no stats field: {reply}"))?;
            if json_out && series {
                // The series document, byte-for-byte as the daemon
                // rendered it (it precedes the stats field, so a
                // balanced scan rather than a suffix slice).
                let doc = extract_field_object(&reply, "series")
                    .ok_or_else(|| format!("reply has no series field: {reply}"))?;
                println!("{doc}");
            } else if json_out {
                // The reply embeds the snapshot verbatim as its last
                // field, so the raw document is everything from
                // `"stats":` to the closing brace.
                let at = reply.find("\"stats\":").expect("field located above");
                println!("{}", &reply[at + "\"stats\":".len()..reply.len() - 1]);
            } else {
                if series {
                    let doc = parsed
                        .get("series")
                        .ok_or_else(|| format!("reply has no series field: {reply}"))?;
                    print!("{}", render_series_human(doc));
                }
                print!("{}", render_stats_human(stats, verbose));
            }
            Ok(())
        }
        "flight" => {
            let (endpoint, rest) = endpoint_options(it)?;
            let mut json_out = false;
            let mut slow_only = false;
            for arg in &rest {
                match arg.as_str() {
                    "--json" => json_out = true,
                    "--slow-only" => slow_only = true,
                    _ => {
                        return Err(
                            "flight takes only --socket/--tcp, --slow-only, and --json".into()
                        )
                    }
                }
            }
            let line = if slow_only {
                "{\"id\":\"flight-cli\",\"cmd\":\"flight\",\"slow_only\":true}"
            } else {
                "{\"id\":\"flight-cli\",\"cmd\":\"flight\"}"
            };
            let exchange = daemon_exchange(&endpoint, &[line.to_string()])?;
            let reply = exchange
                .replies
                .first()
                .ok_or("daemon closed the connection without replying")?
                .clone();
            let parsed =
                json::parse(&reply).map_err(|e| format!("daemon sent unparsable reply: {e}"))?;
            if parsed.get("ok") != Some(&Value::Bool(true)) {
                return Err(format!("daemon refused the flight query: {reply}"));
            }
            let flight = parsed
                .get("flight")
                .ok_or_else(|| format!("reply has no flight field: {reply}"))?;
            if json_out {
                // The flight document is the reply's last field,
                // embedded verbatim.
                let at = reply.find("\"flight\":").expect("field located above");
                println!("{}", &reply[at + "\"flight\":".len()..reply.len() - 1]);
            } else {
                print!("{}", render_flight_human(flight, slow_only));
            }
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

struct ServeOptions {
    cfg: ujam::serve::ServeConfig,
    rcfg: ujam::serve::ReactorConfig,
    socket: Option<String>,
    tcp: Option<String>,
    trace: TraceMode,
    metrics_interval: Option<u64>,
    /// Dump the flight recorder as a Chrome trace file on shutdown.
    trace_chrome: Option<String>,
}

fn serve_options<'a>(it: impl Iterator<Item = &'a String>) -> Result<ServeOptions, String> {
    let mut cfg = ujam::serve::ServeConfig::default();
    let mut rcfg = ujam::serve::ReactorConfig::default();
    let mut socket = None;
    let mut tcp = None;
    let mut trace = TraceMode::Off;
    let mut metrics_interval = None;
    let mut trace_chrome = None;
    let mut it = it.peekable();
    let number = |flag: &str, v: Option<&String>| -> Result<usize, String> {
        v.and_then(|s| s.parse().ok())
            .filter(|&n| n > 0)
            .ok_or_else(|| format!("{flag} needs a positive number"))
    };
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--workers" => cfg.workers = number("--workers", it.next())?,
            "--batch" => cfg.batch_max = number("--batch", it.next())?,
            "--cache" => {
                // 0 is meaningful here: it disables the decision cache.
                cfg.cache_capacity = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--cache needs a number")?;
            }
            "--shards" => cfg.shards = number("--shards", it.next())?,
            "--socket" => socket = Some(it.next().ok_or("--socket needs a path")?.clone()),
            "--tcp" => tcp = Some(it.next().ok_or("--tcp needs an address")?.clone()),
            "--max-queue" => rcfg.max_queue = number("--max-queue", it.next())?,
            "--max-conns" => rcfg.max_conns = number("--max-conns", it.next())?,
            "--max-inflight" => rcfg.max_inflight = number("--max-inflight", it.next())?,
            "--read-timeout-ms" => {
                rcfg.read_timeout =
                    std::time::Duration::from_millis(number("--read-timeout-ms", it.next())? as u64)
            }
            "--metrics-interval" => {
                metrics_interval = Some(number("--metrics-interval", it.next()).map(|n| n as u64)?)
            }
            "--flight-capacity" => cfg.flight_capacity = number("--flight-capacity", it.next())?,
            "--slow-ms" => cfg.slow_ms = number("--slow-ms", it.next())? as u64,
            "--trace-chrome" => {
                trace_chrome = Some(it.next().ok_or("--trace-chrome needs a path")?.clone())
            }
            other if other.starts_with("--trace-chrome=") => {
                let path = &other["--trace-chrome=".len()..];
                if path.is_empty() {
                    return Err("--trace-chrome needs a path".into());
                }
                trace_chrome = Some(path.to_string());
            }
            "--trace" => trace = TraceMode::Human,
            "--trace=json" => trace = TraceMode::Json,
            "--trace=human" => trace = TraceMode::Human,
            other if other.starts_with("--trace=") => {
                return Err(format!(
                    "bad --trace value {:?} (expected json or human)",
                    &other["--trace=".len()..]
                ))
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(ServeOptions {
        cfg,
        rcfg,
        socket,
        tcp,
        trace,
        metrics_interval,
        trace_chrome,
    })
}

/// Binds the serve listeners and announces each bound address on
/// stderr — `serve: tcp listening on ADDR` is how scripts discover the
/// port `--tcp 127.0.0.1:0` picked.
fn bind_transports(opts: &ServeOptions) -> Result<ujam::serve::Transports, String> {
    let mut transports = ujam::serve::Transports::default();
    if let Some(addr) = &opts.tcp {
        let listener = std::net::TcpListener::bind(addr)
            .map_err(|e| format!("cannot bind tcp {addr:?}: {e}"))?;
        let local = listener
            .local_addr()
            .map_err(|e| format!("tcp listener has no address: {e}"))?;
        eprintln!("serve: tcp listening on {local}");
        transports.tcp = Some(listener);
    }
    if let Some(path) = &opts.socket {
        let path = std::path::Path::new(path);
        if path.exists() {
            std::fs::remove_file(path)
                .map_err(|e| format!("cannot replace socket {path:?}: {e}"))?;
        }
        let listener = std::os::unix::net::UnixListener::bind(path)
            .map_err(|e| format!("cannot bind socket {path:?}: {e}"))?;
        eprintln!("serve: unix listening on {}", path.display());
        transports.unix = Some(listener);
    }
    Ok(transports)
}

/// Where the daemon-client subcommands (`request`, `stats`) connect.
enum Endpoint {
    Unix(String),
    Tcp(String),
}

/// Parses the `--socket PATH` / `--tcp ADDR` flags for the
/// daemon-client subcommands, returning the endpoint and the unconsumed
/// arguments.
fn endpoint_options<'a>(
    it: impl Iterator<Item = &'a String>,
) -> Result<(Endpoint, Vec<String>), String> {
    let mut socket = None;
    let mut tcp = None;
    let mut rest = Vec::new();
    let mut it = it.peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => socket = Some(it.next().ok_or("--socket needs a path")?.clone()),
            "--tcp" => tcp = Some(it.next().ok_or("--tcp needs an address")?.clone()),
            _ => rest.push(arg.clone()),
        }
    }
    match (socket, tcp) {
        (Some(path), None) => Ok((Endpoint::Unix(path), rest)),
        (None, Some(addr)) => Ok((Endpoint::Tcp(addr), rest)),
        (Some(_), Some(_)) => Err("use --socket or --tcp, not both".into()),
        (None, None) => {
            Err("--socket PATH or --tcp ADDR is required (where is the daemon?)".into())
        }
    }
}

/// One client conversation's worth of replies.
struct Exchange {
    /// The handshake acknowledgment (TCP only).
    hello: Option<String>,
    /// One reply line per request line, in order.
    replies: Vec<String>,
}

/// Sends NDJSON lines to the daemon at `endpoint` and reads one reply
/// line per request.  Over TCP the versioned hello handshake is sent
/// first and its acknowledgment verified.
fn daemon_exchange(endpoint: &Endpoint, lines: &[String]) -> Result<Exchange, String> {
    let (reader, mut writer): (Box<dyn std::io::Read>, Box<dyn Write>) = match endpoint {
        Endpoint::Unix(path) => {
            let stream = std::os::unix::net::UnixStream::connect(path).map_err(|e| {
                format!("cannot connect to {path:?}: {e} (is `ujam serve` running?)")
            })?;
            let w = stream
                .try_clone()
                .map_err(|e| format!("socket error: {e}"))?;
            (Box::new(stream), Box::new(w))
        }
        Endpoint::Tcp(addr) => {
            let stream = std::net::TcpStream::connect(addr).map_err(|e| {
                format!("cannot connect to {addr:?}: {e} (is `ujam serve --tcp` running?)")
            })?;
            let w = stream
                .try_clone()
                .map_err(|e| format!("socket error: {e}"))?;
            (Box::new(stream), Box::new(w))
        }
    };
    let handshake = matches!(endpoint, Endpoint::Tcp(_));
    let mut payload = String::new();
    if handshake {
        payload.push_str(&format!(
            "{{\"id\":\"hello-cli\",\"cmd\":\"hello\",\"version\":{}}}\n",
            ujam::serve::PROTOCOL_VERSION
        ));
    }
    for line in lines {
        payload.push_str(line);
        payload.push('\n');
    }
    writer
        .write_all(payload.as_bytes())
        .and_then(|()| writer.flush())
        .map_err(|e| format!("cannot send request: {e}"))?;
    let mut reader = std::io::BufReader::new(reader);
    let mut read_line = || -> Result<String, String> {
        let mut reply = String::new();
        reader
            .read_line(&mut reply)
            .map_err(|e| format!("cannot read reply: {e}"))?;
        if reply.is_empty() {
            return Err("daemon closed the connection without replying".into());
        }
        Ok(reply.trim_end().to_string())
    };
    let hello = if handshake {
        let ack = read_line()?;
        if !ack.contains("\"ok\":true") {
            return Err(format!("daemon refused the handshake: {ack}"));
        }
        Some(ack)
    } else {
        None
    };
    let mut replies = Vec::with_capacity(lines.len());
    for _ in lines {
        replies.push(read_line()?);
    }
    Ok(Exchange { hello, replies })
}

/// Slices the embedded object value of `"field":` out of a rendered
/// reply, byte-for-byte, by balanced-brace scan (string- and
/// escape-aware).  Used when the field is not the reply's last — a
/// suffix slice only works for trailing fields.
fn extract_field_object<'r>(reply: &'r str, field: &str) -> Option<&'r str> {
    let key = format!("\"{field}\":");
    let start = reply.find(&key)? + key.len();
    let bytes = reply.as_bytes();
    if *bytes.get(start)? != b'{' {
        return None;
    }
    let (mut depth, mut in_str, mut escape) = (0usize, false, false);
    for (i, &b) in bytes[start..].iter().enumerate() {
        if escape {
            escape = false;
            continue;
        }
        match b {
            b'\\' if in_str => escape = true,
            b'"' => in_str = !in_str,
            b'{' if !in_str => depth += 1,
            b'}' if !in_str => {
                depth -= 1;
                if depth == 0 {
                    return Some(&reply[start..=start + i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Renders a parsed time-series document (the `--series` reply field)
/// as one line per window plus the latest window's exemplars.
fn render_series_human(series: &Value) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let Some(Value::Array(windows)) = series.get("windows") else {
        return "series: no windows\n".to_string();
    };
    let version = series.get("version").and_then(Value::as_f64).unwrap_or(0.0);
    let _ = writeln!(
        out,
        "series version {version}, {} window{}:",
        windows.len(),
        if windows.len() == 1 { "" } else { "s" }
    );
    let _ = writeln!(
        out,
        "  {:>4} {:>9} {:>7} {:>8} {:>8} {:>7} {:>10}",
        "seq", "at_ms", "dur_ms", "reqs/s", "hit-rate", "shed/s", "queue-peak"
    );
    for w in windows {
        let n = |k: &str| w.get(k).and_then(Value::as_f64).unwrap_or(0.0);
        let d = |k: &str| {
            w.get("derived")
                .and_then(|d| d.get(k))
                .and_then(Value::as_f64)
                .unwrap_or(0.0)
        };
        let _ = writeln!(
            out,
            "  {:>4} {:>9} {:>7} {:>8.3} {:>8.3} {:>7.3} {:>10}",
            n("seq"),
            n("at_ms"),
            n("dur_ms"),
            d("reqs_per_s"),
            d("hit_rate"),
            d("shed_per_s"),
            d("queue_depth_peak")
        );
    }
    if let Some(Value::Object(ex)) = windows.last().and_then(|w| w.get("exemplars")) {
        if !ex.is_empty() {
            let _ = writeln!(out, "exemplars (latest window):");
            for (name, v) in ex {
                let f = |k: &str| v.get(k).and_then(Value::as_f64).unwrap_or(0.0);
                let _ = writeln!(out, "  {name}  max={}ns trace=#{}", f("max"), f("trace_id"));
            }
        }
    }
    out
}

/// Renders one parsed flight-recorder timeline the way
/// `RequestTimeline::render_human` does on the daemon side: a summary
/// line plus an edge-duration breakdown.
fn render_timeline_human(t: &Value) -> String {
    use std::fmt::Write as _;
    let ms = |v: Option<&Value>| match v.and_then(Value::as_f64) {
        Some(v) => format!("{:.2}ms", v / 1e6),
        None => "--".to_string(),
    };
    let s = |k: &str| match t.get(k) {
        Some(Value::String(s)) if !s.is_empty() => s.as_str(),
        _ => "?",
    };
    let trace_id = t.get("trace_id").and_then(Value::as_f64).unwrap_or(0.0);
    let mut out = format!(
        "#{} id={} nest={} {}",
        trace_id,
        s("id"),
        s("nest"),
        s("outcome")
    );
    if t.get("cached") == Some(&Value::Bool(true)) {
        out.push_str(" (cached)");
    }
    if let Some(Value::Array(u)) = t.get("unroll") {
        let parts: Vec<String> = u
            .iter()
            .map(|v| format!("{}", v.as_f64().unwrap_or(0.0)))
            .collect();
        let _ = write!(out, " u=[{}]", parts.join(","));
    }
    let dur = |k: &str| t.get("durations").and_then(|d| d.get(k));
    let _ = write!(out, " total={}", ms(dur("total_ns")));
    if let Some(Value::Object(a)) = t.get("anomaly") {
        if let Some(Value::String(reason)) = a.get("reason") {
            let _ = write!(out, " !{reason}");
        }
        if let Some(Value::String(detail)) = a.get("detail") {
            if !detail.is_empty() {
                let _ = write!(out, " ({detail})");
            }
        }
    }
    let _ = write!(
        out,
        "\n   queue={} cache={} analysis={} flush={}",
        ms(dur("queue_ns")),
        ms(dur("cache_ns")),
        ms(dur("analysis_ns")),
        ms(dur("flush_ns")),
    );
    out
}

/// Renders a parsed flight-recorder document: a header, the recent
/// ring, and the anomaly ring.
fn render_flight_human(flight: &Value, slow_only: bool) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let f = |k: &str| flight.get(k).and_then(Value::as_f64).unwrap_or(0.0);
    let _ = writeln!(
        out,
        "flight recorder: version {}, capacity {}, slow_ms {}, next trace id {}",
        f("version"),
        f("capacity"),
        f("slow_ms"),
        f("next_trace_id")
    );
    for (title, key) in [("recent", "recent"), ("anomalies", "anomalies")] {
        if slow_only && key == "recent" {
            continue;
        }
        let Some(Value::Array(timelines)) = flight.get(key) else {
            continue;
        };
        let _ = writeln!(
            out,
            "{title} ({} timeline{}):",
            timelines.len(),
            if timelines.len() == 1 { "" } else { "s" }
        );
        for t in timelines {
            let _ = writeln!(out, "{}", render_timeline_human(t));
        }
    }
    out
}

/// Renders a parsed metrics snapshot as the aligned tables a human
/// wants at a terminal (the daemon ships JSON; see `--json` for that).
/// Per-shard cache counters are rolled up into one
/// `serve.cache.total.*` section; `verbose` keeps the per-shard lines
/// too.
fn render_stats_human(stats: &Value, verbose: bool) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if let Some(v) = stats.get("version").and_then(Value::as_f64) {
        let _ = writeln!(out, "snapshot version {v}");
    }
    fn section(
        out: &mut String,
        title: &str,
        body: Option<&Value>,
        f: &dyn Fn(&mut String, &Value),
    ) {
        use std::fmt::Write as _;
        let Some(Value::Object(m)) = body else { return };
        if m.is_empty() {
            return;
        }
        let wide = m.keys().map(String::len).max().unwrap_or(0);
        let _ = writeln!(out, "{title}:");
        for (name, v) in m {
            let mut line = format!("  {name:wide$}  ");
            f(&mut line, v);
            let _ = writeln!(out, "{}", line.trim_end());
        }
    }
    let plain: &dyn Fn(&mut String, &Value) = &|line, v| {
        let _ = write!(line, "{}", v.as_f64().unwrap_or(0.0));
    };
    // Roll per-shard cache counters (`serve.cache.shardK.*`) up into
    // one aggregate section; the K per-shard lines only matter when
    // chasing shard imbalance, so they hide behind `verbose`.
    let mut counters = stats.get("counters").cloned();
    if let Some(Value::Object(m)) = &mut counters {
        let is_shard = |k: &str| k.starts_with("serve.cache.shard");
        if m.keys().any(|k| is_shard(k)) {
            let sum = |suffix: &str| -> f64 {
                m.iter()
                    .filter(|(k, _)| is_shard(k) && k.ends_with(suffix))
                    .map(|(_, v)| v.as_f64().unwrap_or(0.0))
                    .sum()
            };
            let (hit, miss, evict) = (sum(".hits"), sum(".misses"), sum(".evictions"));
            let shards = m
                .keys()
                .filter(|k| is_shard(k) && k.ends_with(".hits"))
                .count();
            let _ = writeln!(
                out,
                "cache totals ({shards} shard{}):",
                if shards == 1 { "" } else { "s" }
            );
            let _ = writeln!(out, "  serve.cache.total.hit    {hit}");
            let _ = writeln!(out, "  serve.cache.total.miss   {miss}");
            let _ = writeln!(out, "  serve.cache.total.evict  {evict}");
            if hit + miss > 0.0 {
                let _ = writeln!(
                    out,
                    "  hit-rate                 {:.1}%",
                    100.0 * hit / (hit + miss)
                );
            }
            if !verbose {
                m.retain(|k, _| !is_shard(k));
            }
        }
    }
    section(&mut out, "counters", counters.as_ref(), plain);
    section(&mut out, "gauges", stats.get("gauges"), plain);
    section(
        &mut out,
        "histograms",
        stats.get("histograms"),
        &|line, v| {
            let field = |k: &str| v.get(k).and_then(Value::as_f64).unwrap_or(0.0);
            let _ = write!(
                line,
                "count {}  mean {:.1}  p50 {}  p90 {}  p99 {}",
                field("count"),
                field("mean"),
                field("p50"),
                field("p90"),
                field("p99")
            );
        },
    );
    out
}

fn lookup(name: Option<&String>) -> Result<LoopNest, String> {
    let name = name.ok_or("missing loop name")?;
    let lower = name.to_ascii_lowercase();
    if lower.ends_with(".f") || lower.ends_with(".f77") || lower.ends_with(".for") {
        let src =
            std::fs::read_to_string(name).map_err(|e| format!("cannot read {name:?}: {e}"))?;
        return ujam::fortran::parse(&src).map_err(|e| format!("{name}: {e}"));
    }
    kernel(name)
        .map(|k| k.nest())
        .or_else(|| deep_kernel(name).map(|k| k.nest()))
        .ok_or_else(|| format!("unknown kernel {name:?} (try `ujam list`)"))
}

/// How much trace output `ujam optimize` should render.
#[derive(Clone, Copy, PartialEq, Eq)]
enum TraceMode {
    Off,
    Human,
    Json,
    Chrome,
}

struct OptimizeOptions {
    machine: MachineModel,
    model: BalanceModel,
    cost: CostModelKind,
    trace: TraceMode,
    explain: bool,
    config: SearchConfig,
}

impl OptimizeOptions {
    /// Whether the pipeline should run with a collecting sink at all.
    fn observing(&self) -> bool {
        self.trace != TraceMode::Off || self.explain
    }
}

fn optimize_options<'a>(it: impl Iterator<Item = &'a String>) -> Result<OptimizeOptions, String> {
    let mut machine = MachineModel::dec_alpha();
    let mut model = BalanceModel::CacheAware;
    let mut cost = CostModelKind::Analytic;
    let mut trace = TraceMode::Off;
    let mut explain = false;
    let mut config = SearchConfig::default();
    let mut it = it.peekable();
    // Flags taking a value accept both `--flag V` and `--flag=V`.
    while let Some(flag) = it.next() {
        let (name, inline) = match flag.split_once('=') {
            Some((n, v)) => (n, Some(v.to_string())),
            None => (flag.as_str(), None),
        };
        match name {
            "--machine" => {
                let v = inline.or_else(|| it.next().cloned());
                machine = match v.as_deref() {
                    Some("alpha") => MachineModel::dec_alpha(),
                    Some("parisc") => MachineModel::hp_parisc(),
                    Some("prefetch") => MachineModel::prefetching_risc(),
                    other => return Err(format!("bad --machine value {other:?}")),
                }
            }
            "--model" => {
                let v = inline.or_else(|| it.next().cloned());
                model = match v.as_deref() {
                    Some("cache") => BalanceModel::CacheAware,
                    Some("allhits") => BalanceModel::AllHits,
                    other => return Err(format!("bad --model value {other:?}")),
                }
            }
            "--cost-model" => {
                let v = inline.or_else(|| it.next().cloned());
                cost = v.as_deref().and_then(CostModelKind::parse).ok_or_else(|| {
                    format!(
                        "bad --cost-model value {v:?} \
                             (expected analytic, profiled, or blended)"
                    )
                })?;
            }
            "--max-unroll-loops" => {
                let v = inline.or_else(|| it.next().cloned());
                config.max_unroll_loops = v
                    .as_deref()
                    .and_then(|s| s.parse::<usize>().ok())
                    .ok_or_else(|| {
                        format!(
                            "bad --max-unroll-loops value {v:?} \
                             (expected a non-negative integer; 0 = unbounded)"
                        )
                    })?;
            }
            "--code-budget" => {
                let v = inline.or_else(|| it.next().cloned());
                let budget = v
                    .as_deref()
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|&b| b > 0)
                    .ok_or_else(|| {
                        format!("bad --code-budget value {v:?} (expected a positive integer)")
                    })?;
                config.code_budget = Some(budget);
            }
            "--trace" if inline.is_none() => trace = TraceMode::Human,
            "--trace" => {
                trace = match inline.as_deref() {
                    Some("json") => TraceMode::Json,
                    Some("human") => TraceMode::Human,
                    Some("chrome") => TraceMode::Chrome,
                    other => {
                        return Err(format!(
                            "bad --trace value {:?} (expected json, human, or chrome)",
                            other.unwrap_or("")
                        ))
                    }
                }
            }
            "--explain" if inline.is_none() => explain = true,
            _ => return Err(format!("unknown option {flag:?}")),
        }
    }
    Ok(OptimizeOptions {
        machine,
        model,
        cost,
        trace,
        explain,
        config,
    })
}

struct ProfileOptions {
    nest: Option<String>,
    machine: MachineModel,
    geometry: Option<CacheGeometry>,
    out: Option<String>,
}

/// Parses `ujam profile` arguments: a positional `<loop>` or
/// `--kernel NAME`, plus `--machine`, `--cache-geometry CAP:LINE:WAYS`,
/// and `--profile-out PATH` — every value flag in both `--flag V` and
/// `--flag=V` forms.
fn profile_options<'a>(it: impl Iterator<Item = &'a String>) -> Result<ProfileOptions, String> {
    let mut nest = None;
    let mut machine = MachineModel::dec_alpha();
    let mut geometry = None;
    let mut out = None;
    let mut it = it.peekable();
    while let Some(flag) = it.next() {
        if !flag.starts_with("--") {
            if nest.replace(flag.clone()).is_some() {
                return Err("profile takes one loop (positional or --kernel)".into());
            }
            continue;
        }
        let (name, inline) = match flag.split_once('=') {
            Some((n, v)) => (n, Some(v.to_string())),
            None => (flag.as_str(), None),
        };
        match name {
            "--kernel" => {
                let v = inline
                    .or_else(|| it.next().cloned())
                    .ok_or("--kernel needs a name")?;
                if nest.replace(v).is_some() {
                    return Err("profile takes one loop (positional or --kernel)".into());
                }
            }
            "--machine" => {
                let v = inline.or_else(|| it.next().cloned());
                machine = match v.as_deref() {
                    Some("alpha") => MachineModel::dec_alpha(),
                    Some("parisc") => MachineModel::hp_parisc(),
                    Some("prefetch") => MachineModel::prefetching_risc(),
                    other => return Err(format!("bad --machine value {other:?}")),
                }
            }
            "--cache-geometry" => {
                let v = inline.or_else(|| it.next().cloned());
                geometry = Some(parse_geometry(v.as_deref())?);
            }
            "--profile-out" => {
                out = Some(
                    inline
                        .or_else(|| it.next().cloned())
                        .ok_or("--profile-out needs a path")?,
                );
            }
            _ => return Err(format!("unknown option {flag:?}")),
        }
    }
    Ok(ProfileOptions {
        nest,
        machine,
        geometry,
        out,
    })
}

/// Parses and validates a `CAP:LINE:WAYS` cache geometry (all bytes /
/// bytes / ways, all positive, capacity a whole number of sets).
fn parse_geometry(v: Option<&str>) -> Result<CacheGeometry, String> {
    let bad = || {
        format!(
            "bad --cache-geometry value {v:?} \
             (expected CAPACITY:LINE:WAYS in bytes, e.g. 8192:32:1)"
        )
    };
    let parts: Vec<usize> = v
        .unwrap_or("")
        .split(':')
        .map(|p| p.parse::<usize>().map_err(|_| bad()))
        .collect::<Result<_, _>>()?;
    let [capacity_bytes, line_bytes, ways] = parts[..] else {
        return Err(bad());
    };
    let g = CacheGeometry {
        capacity_bytes,
        line_bytes,
        ways,
    };
    g.validate()
        .map_err(|e| format!("bad --cache-geometry value: {e}"))?;
    Ok(g)
}

fn options<'a>(
    it: impl Iterator<Item = &'a String>,
) -> Result<(MachineModel, BalanceModel), String> {
    let mut machine = MachineModel::dec_alpha();
    let mut model = BalanceModel::CacheAware;
    let mut it = it.peekable();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--machine" => {
                machine = match it.next().map(|s| s.as_str()) {
                    Some("alpha") => MachineModel::dec_alpha(),
                    Some("parisc") => MachineModel::hp_parisc(),
                    Some("prefetch") => MachineModel::prefetching_risc(),
                    other => return Err(format!("bad --machine value {other:?}")),
                }
            }
            "--model" => {
                model = match it.next().map(|s| s.as_str()) {
                    Some("cache") => BalanceModel::CacheAware,
                    Some("allhits") => BalanceModel::AllHits,
                    other => return Err(format!("bad --model value {other:?}")),
                }
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok((machine, model))
}
