//! CI helper: validates a flight-recorder dump and a time-series
//! document captured from a live daemon.
//!
//! `ci.sh` drives a mixed workload through `ujam serve` — fresh
//! requests, a cache-hit duplicate, and one forced anomaly (a request
//! with a hopeless `deadline_ms`) — then captures `ujam flight --json`
//! and `ujam stats --series --json` and feeds both files through this
//! checker.  It pins the observability contract:
//!
//! * the flight document is versioned and its recent ring holds the
//!   workload's timelines, each with a total duration and per-edge
//!   breakdown;
//! * the anomaly ring retains the forced deadline miss with a
//!   structured reason;
//! * the series document is versioned, has at least one window, and
//!   every window carries the derived-rate block;
//! * at least one window has a `serve.request_ns` exemplar, and every
//!   exemplar's trace id points at a timeline the recorder retained.

use std::process::ExitCode;
use ujam::trace::json::{self, Value};

fn main() -> ExitCode {
    match run() {
        Ok(summary) => {
            println!("flight + series OK: {summary}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("invalid flight/series capture: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn field<'a>(doc: &'a Value, name: &str) -> Result<&'a Value, String> {
    doc.get(name)
        .ok_or_else(|| format!("missing field {name:?}"))
}

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    json::parse(text.trim()).map_err(|e| format!("{path}: not strict JSON: {e}"))
}

fn run() -> Result<String, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [flight_path, series_path] = &args[..] else {
        return Err("usage: validate_flight <flight.json> <series.json>".to_string());
    };
    let flight = load(flight_path)?;
    let series = load(series_path)?;

    // The flight document: versioned, recent ring populated, every
    // timeline carrying its edge breakdown.
    let version = field(&flight, "version")?
        .as_f64()
        .ok_or("flight: version is not a number")?;
    if version != 1.0 {
        return Err(format!("flight: unexpected version {version}"));
    }
    for name in ["capacity", "slow_ms", "next_trace_id"] {
        field(&flight, name)?;
    }
    let recent = field(&flight, "recent")?
        .as_array()
        .ok_or("flight: recent is not an array")?;
    if recent.is_empty() {
        return Err("flight: recent ring is empty after a workload".to_string());
    }
    let anomalies = field(&flight, "anomalies")?
        .as_array()
        .ok_or("flight: anomalies is not an array")?;
    let mut trace_ids = Vec::new();
    for t in recent.iter().chain(anomalies) {
        let id = field(t, "trace_id")?
            .as_f64()
            .ok_or("timeline: trace_id is not a number")?;
        trace_ids.push(id as u64);
        field(t, "outcome")?;
        field(t, "edges")?;
        let durations = field(t, "durations")?;
        let total = field(durations, "total_ns")?
            .as_f64()
            .ok_or("timeline: total_ns is not a number")?;
        if total <= 0.0 {
            return Err(format!("timeline #{id}: non-positive total_ns {total}"));
        }
        for name in ["queue_ns", "cache_ns", "analysis_ns", "flush_ns"] {
            field(durations, name)?; // present, possibly null
        }
    }

    // The forced deadline miss must be retained with its reason.
    let deadline_hits = anomalies
        .iter()
        .filter(|t| {
            t.get("anomaly")
                .and_then(|a| a.get("reason"))
                .and_then(Value::as_str)
                == Some("deadline")
        })
        .count();
    if deadline_hits == 0 {
        return Err("flight: forced deadline miss not in the anomaly ring".to_string());
    }

    // The series document: versioned windows with derived rates.
    let version = field(&series, "version")?
        .as_f64()
        .ok_or("series: version is not a number")?;
    if version != 1.0 {
        return Err(format!("series: unexpected version {version}"));
    }
    let windows = field(&series, "windows")?
        .as_array()
        .ok_or("series: windows is not an array")?;
    if windows.is_empty() {
        return Err("series: no windows collected".to_string());
    }
    let mut exemplars = 0usize;
    for (i, w) in windows.iter().enumerate() {
        for name in ["seq", "at_ms", "dur_ms", "deltas", "peaks", "exemplars"] {
            field(w, name)?;
        }
        let derived = field(w, "derived")?;
        for name in ["hit_rate", "queue_depth_peak", "reqs_per_s", "shed_per_s"] {
            field(derived, name)?;
        }
        let Some(Value::Object(ex)) = w.get("exemplars") else {
            return Err(format!("series window {i}: exemplars is not an object"));
        };
        for (name, e) in ex {
            exemplars += 1;
            let trace = field(e, "trace_id")?
                .as_f64()
                .ok_or_else(|| format!("exemplar {name}: trace_id is not a number"))?;
            if !trace_ids.contains(&(trace as u64)) {
                return Err(format!(
                    "exemplar {name}: trace id {trace} not retained by the recorder"
                ));
            }
        }
    }
    let latency_exemplars = windows
        .iter()
        .filter(|w| {
            matches!(w.get("exemplars"), Some(Value::Object(ex))
                if name_present(ex, "serve.request_ns"))
        })
        .count();
    if latency_exemplars == 0 {
        return Err("series: no serve.request_ns exemplar in any window".to_string());
    }

    Ok(format!(
        "{} timelines ({} anomalous, {deadline_hits} deadline), \
         {} windows, {exemplars} exemplars",
        recent.len(),
        anomalies.len(),
        windows.len()
    ))
}

fn name_present(ex: &std::collections::BTreeMap<String, Value>, name: &str) -> bool {
    ex.keys().any(|k| k == name)
}
