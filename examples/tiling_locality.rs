//! Composing the whole toolbox the way Wolf, Maydan & Chen's framework
//! does (§5.3): memory-order permutation, cache tiling, and
//! unroll-and-jam, each measured on the cache + II simulator.
//!
//! Run with `cargo run --release --example tiling_locality`.

use ujam::core::optimize;
use ujam::dep::DepGraph;
use ujam::ir::transform::tile;
use ujam::ir::NestBuilder;
use ujam::machine::MachineModel;
use ujam::reuse::permute::best_order;
use ujam::sim::simulate;

fn main() {
    let n = 96;
    // Start from the *bad* loop order: the reduction innermost.
    let nest = NestBuilder::new("mm-jik")
        .array("A", &[n + 4, n + 4])
        .array("B", &[n + 4, n + 4])
        .array("C", &[n + 4, n + 4])
        .loop_("J", 1, n)
        .loop_("I", 1, n)
        .loop_("K", 1, n)
        .stmt("C(I,J) = C(I,J) + A(I,K) * B(K,J)")
        .build();
    let machine = MachineModel::dec_alpha();
    let report = |label: &str, nest: &ujam::ir::LoopNest| {
        let r = simulate(nest, &machine);
        println!(
            "{label:28} {:>12.0} cycles  miss rate {:>5.1}%  order {:?}",
            r.cycles,
            100.0 * r.miss_rate(),
            nest.loop_vars()
        );
        r.cycles
    };

    let base = report("original (JIK)", &nest);

    let graph = DepGraph::build(&nest);
    let (permuted, _) = best_order(&nest, &graph, machine.line_elems());
    let after_permute = report("memory order (permute)", &permuted);

    let tiled = tile(&permuted, &[(0, 8), (1, 8)]).expect("tileable");
    let after_tile = report("…then 8x8 tiling", &tiled);

    let jam = optimize(&permuted, &machine).expect("valid nest");
    let after_jam = report("…then unroll-and-jam", &jam.nest);

    println!(
        "\nspeedups vs original: permute {:.2}x, +tile {:.2}x, +jam {:.2}x",
        base / after_permute,
        base / after_tile,
        base / after_jam
    );
    println!(
        "(unroll-and-jam chose {:?}; tiling targets capacity misses while\n jamming targets balance — the framework combines them)",
        jam.unroll
    );
}
