//! Figure 1 walkthrough: how copies of group-temporal sets merge as the
//! unroll amount grows, and how the precomputed table captures it.
//!
//! Run with `cargo run --example merging`.

use ujam::core::{gts_table, UnrollSpace};
use ujam::ir::transform::unroll_and_jam;
use ujam::ir::NestBuilder;
use ujam::reuse::{group_temporal_sets, Localized, UgsSet};

fn main() {
    // Two references two outer iterations apart — the Figure 1 situation
    // transported to an unrollable outer loop: B(I,J) and B(I,J+2).
    let nest = NestBuilder::new("fig1")
        .array("A", &[66, 70])
        .array("B", &[66, 70])
        .loop_("J", 1, 60)
        .loop_("I", 1, 60)
        .stmt("A(I,J) = B(I,J) + B(I,J+2)")
        .build();
    println!("loop:\n{nest}");

    let b = UgsSet::partition(&nest)
        .into_iter()
        .find(|s| s.array() == "B")
        .expect("B set");
    println!(
        "uniformly generated set on B: H =\n{}\nleaders (c vectors): {:?}",
        b.h(),
        b.members_lex()
            .iter()
            .map(|m| m.c.clone())
            .collect::<Vec<_>>()
    );

    let space = UnrollSpace::new(2, &[0], 5);
    let table = gts_table(&b, &space);
    println!("\nGTS table (new groups contributed per copy offset):");
    for offset in space.offsets() {
        println!("  offset {:?}: {}", offset, table.get(&offset));
    }

    println!("\nGTS count after unrolling J by u (prefix sums):");
    for u in 0..=5u32 {
        let predicted = table.prefix_sum(&[u]);
        // Verify against the actually-unrolled loop.
        let unrolled = unroll_and_jam(&nest, &[u, 0]).expect("legal");
        let l = Localized::innermost(2);
        let actual: usize = UgsSet::partition(&unrolled)
            .iter()
            .filter(|s| s.array() == "B")
            .map(|s| group_temporal_sets(s, &l).len())
            .sum();
        println!("  u = {u}: table says {predicted}, unrolled loop has {actual}");
        assert_eq!(predicted, actual as i64);
    }
    println!("\nFrom u = 2 on, each new copy of B(I,J) lands on an existing");
    println!("copy of B(I,J+2): one new group per step instead of two —");
    println!("exactly the merge the solve H·x = c2 − c1 predicts at x = 2.");
}
