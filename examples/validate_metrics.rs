//! CI helper: validates the bench artifacts `BENCH_serve.json` and
//! `BENCH_search.json`.
//!
//! Usage: `validate_metrics <BENCH_serve.json> <BENCH_search.json>`
//! (defaults to both files at the repository root).  Each document is
//! parsed with the in-tree strict JSON parser; the serve document's
//! embedded metrics snapshot must be internally consistent with the
//! workload it claims (request counters, cache accounting, latency
//! histogram totals, monotone quantiles), and the search document must
//! carry the row schema `validate_search_bench` gates in full.  Exits
//! non-zero with a message on any violation.

use std::process::ExitCode;
use ujam::trace::json::{self, Value};

fn main() -> ExitCode {
    match run() {
        Ok(summary) => {
            println!("metrics OK: {summary}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("invalid metrics artifact: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<String, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/");
    let serve_path = args
        .first()
        .cloned()
        .unwrap_or_else(|| format!("{root}BENCH_serve.json"));
    let search_path = args
        .get(1)
        .cloned()
        .unwrap_or_else(|| format!("{root}BENCH_search.json"));
    let serve = check_serve(&parse_file(&serve_path)?).map_err(|e| format!("{serve_path}: {e}"))?;
    let search =
        check_search(&parse_file(&search_path)?).map_err(|e| format!("{search_path}: {e}"))?;
    Ok(format!("{serve}; {search}"))
}

fn parse_file(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn field(v: &Value, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn check_serve(doc: &Value) -> Result<String, String> {
    if doc.get("bench").and_then(Value::as_str) != Some("serve_latency") {
        return Err("bench field is not \"serve_latency\"".into());
    }
    let requests = field(doc, "requests")?;
    if requests < 1.0 {
        return Err("requests must be positive".into());
    }
    let snapshot = doc.get("snapshot").ok_or("missing snapshot object")?;
    if field(snapshot, "version")? != 1.0 {
        return Err("snapshot version is not 1".into());
    }
    let counters = snapshot.get("counters").ok_or("missing counters object")?;
    if field(counters, "serve.requests")? != requests {
        return Err("serve.requests disagrees with the workload".into());
    }
    if field(counters, "serve.replies_ok")? != requests {
        return Err("a workload request failed".into());
    }
    if field(counters, "serve.cache.hits")? + field(counters, "serve.cache.misses")? != requests {
        return Err("cache hits + misses != requests".into());
    }
    let latency = snapshot
        .get("histograms")
        .and_then(|h| h.get("serve.request_ns"))
        .ok_or("missing serve.request_ns histogram")?;
    if field(latency, "count")? != requests {
        return Err("latency histogram count != requests".into());
    }
    let (p50, p90, p99) = (
        field(latency, "p50")?,
        field(latency, "p90")?,
        field(latency, "p99")?,
    );
    if !(p50 <= p90 && p90 <= p99) {
        return Err(format!(
            "non-monotone quantiles p50={p50} p90={p90} p99={p99}"
        ));
    }
    let buckets = latency
        .get("buckets")
        .and_then(Value::as_array)
        .ok_or("missing buckets array")?;
    let mut total = 0.0;
    for b in buckets {
        let triple = b
            .as_array()
            .filter(|t| t.len() == 3)
            .ok_or("bucket is not a [lo,hi,count] triple")?;
        let (lo, hi) = (
            triple[0].as_f64().ok_or("bucket lo")?,
            triple[1].as_f64().ok_or("bucket hi")?,
        );
        if lo > hi {
            return Err(format!("inverted bucket bounds [{lo},{hi}]"));
        }
        total += triple[2].as_f64().ok_or("bucket count")?;
    }
    if total != requests {
        return Err(format!("bucket counts sum to {total}, want {requests}"));
    }

    // The multi-connection TCP arm: concurrency floor (64 clients in
    // full runs), accounting, and monotone client-side quantiles.
    let quick = doc.get("quick") == Some(&Value::Bool(true));
    let tcp = doc.get("tcp").ok_or("missing tcp object")?;
    let clients = field(tcp, "clients")?;
    let floor = if quick { 1.0 } else { 64.0 };
    if clients < floor {
        return Err(format!(
            "tcp arm ran {clients} concurrent clients, need >= {floor}"
        ));
    }
    let per_client = field(tcp, "per_client")?;
    if field(tcp, "requests")? != clients * per_client {
        return Err("tcp requests != clients * per_client".into());
    }
    let (p50, p90, p99) = (
        field(tcp, "p50_ns")?,
        field(tcp, "p90_ns")?,
        field(tcp, "p99_ns")?,
    );
    if !(0.0 < p50 && p50 <= p90 && p90 <= p99) {
        return Err(format!(
            "non-monotone tcp quantiles p50={p50} p90={p90} p99={p99}"
        ));
    }
    if field(tcp, "mean_ns")? <= 0.0 {
        return Err("tcp mean latency must be positive".into());
    }

    // The admission-control arm: the burst was fully answered, some of
    // it shed, some served, and the daemon stayed bitwise-correct.
    let shed = doc.get("shed").ok_or("missing shed object")?;
    let burst = field(shed, "burst")?;
    let (shed_n, served) = (field(shed, "shed")?, field(shed, "served")?);
    if shed_n + served != burst {
        return Err("shed + served != burst: replies were dropped".into());
    }
    if shed_n < 1.0 || served < 1.0 {
        return Err(format!(
            "shed arm must both shed and serve (shed={shed_n}, served={served})"
        ));
    }
    if field(shed, "max_queue")? >= burst {
        return Err("shed arm queue is not smaller than the burst".into());
    }
    if shed.get("post_load_bitwise") != Some(&Value::Bool(true)) {
        return Err("post-load probe diverged from optimize_batch".into());
    }

    Ok(format!(
        "serve_latency: {requests} requests accounted, \
         {clients} tcp clients p99<={p99}ns, {shed_n}/{burst} shed"
    ))
}

fn check_search(doc: &Value) -> Result<String, String> {
    if doc.get("bench").and_then(Value::as_str) != Some("search_scaling") {
        return Err("bench field is not \"search_scaling\"".into());
    }
    let rows = doc
        .get("rows")
        .and_then(Value::as_array)
        .ok_or("missing rows array")?;
    if rows.is_empty() {
        return Err("rows array is empty".into());
    }
    for (i, row) in rows.iter().enumerate() {
        for key in [
            "space",
            "bound",
            "naive_ns",
            "summed_area_ns",
            "pruned_ns",
            "pruned_upset",
            "speedup_naive_over_summed",
        ] {
            field(row, key).map_err(|e| format!("row {i}: {e}"))?;
        }
        if row.get("winners_agree") != Some(&Value::Bool(true)) {
            return Err(format!("row {i}: engines disagree on the winner"));
        }
    }
    Ok(format!("search_scaling: {} rows", rows.len()))
}
