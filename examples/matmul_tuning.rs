//! Tune matrix multiply for two machines and watch the optimizer trade
//! registers for balance.
//!
//! Run with `cargo run --release --example matmul_tuning`.

use ujam::core::{optimize, UnrollSpace};
use ujam::ir::NestBuilder;
use ujam::machine::MachineModel;
use ujam::sim::simulate;

fn matmul(n: i64) -> ujam::ir::LoopNest {
    NestBuilder::new("mmjki")
        .array("A", &[n + 4, n + 4])
        .array("B", &[n + 4, n + 4])
        .array("C", &[n + 4, n + 4])
        .loop_("J", 1, n)
        .loop_("K", 1, n)
        .loop_("I", 1, n)
        .stmt("C(I,J) = C(I,J) + A(I,K) * B(K,J)")
        .build()
}

fn main() {
    let nest = matmul(48);
    for machine in [MachineModel::dec_alpha(), MachineModel::hp_parisc()] {
        println!("=== {} (balance {}) ===", machine.name(), machine.balance());
        let plan = optimize(&nest, &machine).expect("valid nest");
        println!(
            "chosen unroll {:?}: balance {:.3} -> {:.3}, registers {}",
            plan.unroll, plan.original.balance, plan.predicted.balance, plan.predicted.registers
        );
        let before = simulate(&nest, &machine);
        let after = simulate(&plan.nest, &machine);
        println!(
            "simulated {:.2}x speedup ({:.0} -> {:.0} cycles, miss rate {:.1}% -> {:.1}%)",
            before.cycles / after.cycles,
            before.cycles,
            after.cycles,
            100.0 * before.miss_rate(),
            100.0 * after.miss_rate()
        );

        // Sweep the whole 2-D unroll space to see the balance surface —
        // one table build answers every query.
        let space = UnrollSpace::new(3, &[0, 1], 3);
        let tables = ujam::core::tables::CostTables::build(&nest, &space, machine.line_elems());
        println!("balance surface over (uJ, uK):");
        for uj in 0..=3u32 {
            print!("  ");
            for uk in 0..=3u32 {
                let inputs = ujam::core::BalanceInputs {
                    flops: tables.flops(&[uj, uk]) as f64,
                    memory_ops: tables.memory_ops(&[uj, uk]) as f64,
                    cache_lines: tables.cache_lines(&[uj, uk]),
                    registers: tables.registers(&[uj, uk]),
                };
                print!("{:7.3}", ujam::core::loop_balance(&inputs, &machine));
            }
            println!();
        }
        println!();
    }
}
