//! CI helper: validates a `ujam profile` reuse-distance report.
//!
//! Reads the file named by the first argument (or stdin when absent),
//! parses it with the in-tree strict JSON parser, and checks the shape
//! the profiler promises: the schema version, a well-formed cache
//! geometry, per-array sections whose access and histogram totals
//! reconcile with the aggregate, and miss rates that are consistent
//! with the raw counts.  With `--kernel NAME` it additionally checks a
//! known-kernel sanity bound: the set-associative miss rate must land
//! in (0, 50%] — a streaming numerical kernel that misses on more than
//! every other access (or never misses at all) means the address
//! replay, not the kernel, is broken.  Exits non-zero with a message on
//! any violation — `ci.sh` runs this against a freshly captured report.

use std::io::Read;
use std::process::ExitCode;
use ujam::trace::json::{self, Value};

fn main() -> ExitCode {
    match run() {
        Ok(summary) => {
            println!("profile OK: {summary}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("invalid profile: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn field(doc: &Value, name: &str) -> Result<f64, String> {
    doc.get(name)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("missing numeric field {name:?}"))
}

fn histogram_total(v: &Value, what: &str) -> Result<f64, String> {
    let Some(Value::Object(m)) = v.get("histogram") else {
        return Err(format!("{what}: missing histogram object"));
    };
    let mut total = 0.0;
    for (bucket, count) in m {
        bucket
            .parse::<u64>()
            .map_err(|_| format!("{what}: non-numeric histogram bucket {bucket:?}"))?;
        total += count
            .as_f64()
            .ok_or_else(|| format!("{what}: non-numeric count in bucket {bucket:?}"))?;
    }
    Ok(total)
}

fn run() -> Result<String, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let kernel = args
        .iter()
        .position(|a| a == "--kernel")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let text = match args
        .iter()
        .enumerate()
        .find(|(i, a)| {
            !a.starts_with("--")
                && args.get(i.wrapping_sub(1)).map(String::as_str) != Some("--kernel")
        })
        .map(|(_, a)| a)
    {
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?
        }
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            buf
        }
    };
    let doc = json::parse(text.trim())?;

    if field(&doc, "version")? != 1.0 {
        return Err("unsupported report version".into());
    }
    let nest = doc
        .get("nest")
        .and_then(Value::as_str)
        .ok_or("missing nest name")?;
    if let Some(expected) = &kernel {
        if nest != expected {
            return Err(format!("report is for {nest:?}, expected {expected:?}"));
        }
    }

    let geometry = doc.get("geometry").ok_or("missing geometry")?;
    let capacity = field(geometry, "capacity_bytes")?;
    let line = field(geometry, "line_bytes")?;
    let ways = field(geometry, "ways")?;
    if capacity <= 0.0 || line <= 0.0 || ways <= 0.0 || capacity % (line * ways) != 0.0 {
        return Err(format!(
            "degenerate geometry {capacity}:{line}:{ways} (capacity must be a whole number of sets)"
        ));
    }

    let accesses = field(&doc, "accesses")?;
    let cold = field(&doc, "cold")?;
    let fa = field(&doc, "fa_misses")?;
    let sa = field(&doc, "sa_misses")?;
    if accesses <= 0.0 {
        return Err("report has no accesses".into());
    }
    // Cold misses miss under any geometry, and the fully-associative
    // LRU cache is optimal among equal-capacity caches on a stack
    // algorithm — the set-associative count can never beat it.
    if fa < cold || sa < fa {
        return Err(format!(
            "miss counts out of order: cold {cold} <= fa {fa} <= sa {sa} must hold"
        ));
    }
    for (name, raw, count) in [("fa_miss_rate", fa, "fa"), ("sa_miss_rate", sa, "sa")] {
        let rate = field(&doc, name)?;
        if (rate - raw / accesses).abs() > 1e-9 {
            return Err(format!("{name} does not match {count}_misses / accesses"));
        }
    }

    // Per-array sections must reconcile with the aggregate: accesses
    // and cold misses partition exactly, and every non-cold access
    // appears in exactly one histogram bucket on both sides.
    let Some(Value::Object(arrays)) = doc.get("arrays") else {
        return Err("missing arrays object".into());
    };
    if arrays.is_empty() {
        return Err("report profiles no arrays".into());
    }
    let agg_hist = histogram_total(&doc, "aggregate")?;
    if agg_hist + cold != accesses {
        return Err("aggregate histogram + cold misses != accesses".into());
    }
    let (mut sum_acc, mut sum_cold, mut sum_hist) = (0.0, 0.0, 0.0);
    for (name, a) in arrays {
        sum_acc += field(a, "accesses")?;
        sum_cold += field(a, "cold")?;
        sum_hist += histogram_total(a, name)?;
    }
    if sum_acc != accesses || sum_cold != cold || sum_hist != agg_hist {
        return Err(format!(
            "per-array totals do not partition the aggregate: \
             accesses {sum_acc}/{accesses}, cold {sum_cold}/{cold}, histogram {sum_hist}/{agg_hist}"
        ));
    }

    let sa_rate = sa / accesses;
    if kernel.is_some() && !(sa_rate > 0.0 && sa_rate <= 0.5) {
        return Err(format!(
            "known-kernel sanity bound violated: sa miss rate {:.2}% outside (0, 50%]",
            100.0 * sa_rate
        ));
    }
    Ok(format!(
        "{nest}: {accesses} accesses over {} arrays, miss rates fa {:.2}% / sa {:.2}%",
        arrays.len(),
        100.0 * fa / accesses,
        100.0 * sa_rate
    ))
}
