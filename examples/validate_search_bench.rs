//! CI helper: validates a `search_scaling` bench document
//! (`BENCH_search.json`).
//!
//! Reads the file named by the first argument (or stdin when absent),
//! parses it with the in-tree strict JSON parser, and checks the schema
//! the bench promises: a `rows` array over strictly growing spaces, the
//! engine timings per row — the scalar *and* SIMD column of every
//! summed-area, pruned and build arm — agreement of all winners across
//! engines and dispatch levels, and a self-consistent speedup ratio.
//! Exits non-zero with a message on any violation — `ci.sh` runs this
//! against a fresh quick-mode run at both feature sets.

use std::io::Read;
use std::process::ExitCode;
use ujam::trace::json::{self, Value};

fn main() -> ExitCode {
    match run() {
        Ok(summary) => {
            println!("search bench OK: {summary}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("invalid search bench document: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<String, String> {
    let text = match std::env::args().nth(1) {
        Some(path) => {
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path:?}: {e}"))?
        }
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            buf
        }
    };
    let doc = json::parse(&text)?;

    if doc.get("bench").and_then(Value::as_str) != Some("search_scaling") {
        return Err("bench field must be \"search_scaling\"".to_string());
    }
    for field in ["kernel", "machine", "model"] {
        if doc.get(field).and_then(Value::as_str).is_none() {
            return Err(format!("missing string field {field:?}"));
        }
    }
    let simd_level = doc
        .get("simd_level")
        .and_then(Value::as_str)
        .ok_or("missing string field \"simd_level\"")?;
    if !matches!(simd_level, "scalar" | "sse2" | "avx2") {
        return Err(format!("unknown simd_level {simd_level:?}"));
    }
    if !matches!(doc.get("quick"), Some(Value::Bool(_))) {
        return Err("missing boolean field \"quick\"".to_string());
    }

    let rows = doc
        .get("rows")
        .and_then(Value::as_array)
        .ok_or("missing rows array")?;
    if rows.is_empty() {
        return Err("rows array is empty".to_string());
    }
    let mut last_space = 0.0;
    for (i, row) in rows.iter().enumerate() {
        let num = |field: &str| {
            row.get(field)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("row {i}: missing numeric field {field:?}"))
        };
        let space = num("space")?;
        if space <= last_space {
            return Err(format!("row {i}: spaces must strictly grow"));
        }
        last_space = space;
        num("bound")?;
        let naive = num("naive_ns")?;
        let summed = num("summed_area_ns")?;
        let pruned_ns = num("pruned_ns")?;
        let pruned = num("pruned_upset")?;
        // Every vectorisable arm carries its forced-scalar twin, so the
        // scalar-vs-SIMD gap is a first-class measured quantity.
        for arm in [
            "summed_area_scalar_ns",
            "pruned_scalar_ns",
            "build_ns",
            "build_scalar_ns",
        ] {
            if num(arm)? <= 0.0 {
                return Err(format!("row {i}: {arm} must be positive"));
            }
        }
        if naive <= 0.0 || summed <= 0.0 || pruned_ns <= 0.0 {
            return Err(format!("row {i}: timings must be positive"));
        }
        if pruned < 0.0 || pruned >= space {
            return Err(format!("row {i}: pruned_upset out of range"));
        }
        if row.get("winner").and_then(Value::as_array).is_none() {
            return Err(format!("row {i}: missing winner array"));
        }
        if row.get("winners_agree") != Some(&Value::Bool(true)) {
            return Err(format!("row {i}: engines must agree on the winner"));
        }
        let speedup = num("speedup_naive_over_summed")?;
        if (speedup - naive / summed).abs() > 0.01 * speedup {
            return Err(format!("row {i}: speedup inconsistent with timings"));
        }
    }
    // The depth-scaling arm: k = 1..3 register-tiling searches over a
    // deep kernel, same agreement discipline as the bound sweep.
    if doc.get("depth_kernel").and_then(Value::as_str).is_none() {
        return Err("missing string field \"depth_kernel\"".to_string());
    }
    let depth_rows = doc
        .get("depth_rows")
        .and_then(Value::as_array)
        .ok_or("missing depth_rows array")?;
    if depth_rows.is_empty() {
        return Err("depth_rows array is empty".to_string());
    }
    let mut last_k = 0.0;
    let mut last_depth_space = 0.0;
    for (i, row) in depth_rows.iter().enumerate() {
        let num = |field: &str| {
            row.get(field)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("depth row {i}: missing numeric field {field:?}"))
        };
        let k = num("k")?;
        if k <= last_k {
            return Err(format!("depth row {i}: k must strictly grow"));
        }
        last_k = k;
        let space = num("space")?;
        if space <= last_depth_space {
            return Err(format!("depth row {i}: spaces must strictly grow"));
        }
        last_depth_space = space;
        let summed = num("summed_area_ns")?;
        let pruned_ns = num("pruned_ns")?;
        if summed <= 0.0 || pruned_ns <= 0.0 {
            return Err(format!("depth row {i}: timings must be positive"));
        }
        for arm in ["summed_area_scalar_ns", "pruned_scalar_ns"] {
            if num(arm)? <= 0.0 {
                return Err(format!("depth row {i}: {arm} must be positive"));
            }
        }
        let pruned = num("pruned_upset")?;
        if pruned < 0.0 || pruned >= space {
            return Err(format!("depth row {i}: pruned_upset out of range"));
        }
        if row.get("winner").and_then(Value::as_array).is_none() {
            return Err(format!("depth row {i}: missing winner array"));
        }
        if row.get("winners_agree") != Some(&Value::Bool(true)) {
            return Err(format!("depth row {i}: engines must agree on the winner"));
        }
    }
    Ok(format!(
        "{} rows, largest space {last_space:.0}; {} depth rows up to k = {last_k:.0} \
         (space {last_depth_space:.0}); simd level {simd_level}",
        rows.len(),
        depth_rows.len()
    ))
}
