//! CI helper: validates a `ujam optimize --trace=json` document.
//!
//! Reads the file named by the first argument (or stdin when absent),
//! parses it with the in-tree strict JSON parser, and checks the shape
//! the observability layer promises: a span for every pipeline pass,
//! cache counters, and exactly one winning explain record.  Exits
//! non-zero with a message on any violation — `ci.sh` runs this against
//! a freshly captured trace.

use std::io::Read;
use std::process::ExitCode;
use ujam::trace::json;

fn main() -> ExitCode {
    match run() {
        Ok(summary) => {
            println!("trace OK: {summary}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("invalid trace: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<String, String> {
    let text = match std::env::args().nth(1) {
        Some(path) => {
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path:?}: {e}"))?
        }
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            buf
        }
    };
    let doc = json::parse(&text)?;

    let spans = doc
        .get("spans")
        .and_then(|s| s.as_array())
        .ok_or("missing spans array")?;
    let names: Vec<&str> = spans
        .iter()
        .filter_map(|s| s.get("name")?.as_str())
        .collect();
    for pass in [
        "select-loops",
        "build-tables",
        "search-space",
        "apply-transform",
    ] {
        if !names.contains(&pass) {
            return Err(format!("no span for pass {pass:?} (have {names:?})"));
        }
    }

    let counters = doc
        .get("counters")
        .and_then(|c| c.as_array())
        .ok_or("missing counters array")?;
    if counters.is_empty() {
        return Err("counters array is empty".to_string());
    }

    let explain = doc
        .get("explain")
        .and_then(|e| e.as_array())
        .ok_or("missing explain array")?;
    let winners = explain
        .iter()
        .filter(|e| e.get("verdict").and_then(|v| v.as_str()) == Some("won"))
        .count();
    if winners != 1 {
        return Err(format!(
            "expected exactly one winning candidate, found {winners}"
        ));
    }

    Ok(format!(
        "{} spans, {} counters, {} candidates, 1 winner",
        spans.len(),
        counters.len(),
        explain.len()
    ))
}
