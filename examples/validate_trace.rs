//! CI helper: validates a `ujam optimize --trace=json` document — or,
//! with `--chrome`, a `--trace=chrome` trace-event export.
//!
//! Reads the file named by the first non-flag argument (or stdin when
//! absent), parses it with the in-tree strict JSON parser, and checks
//! the shape the observability layer promises.  Default mode: a span
//! for every pipeline pass, cache counters, and exactly one winning
//! explain record.  `--chrome` mode: a bare array of trace events whose
//! phases are only `"X"` (complete) and `"M"` (metadata), with numeric
//! `ts`/`dur`/`pid`/`tid` on every complete event and one per pipeline
//! pass.  Exits non-zero with a message on any violation — `ci.sh` runs
//! this against freshly captured documents in both modes.

use std::io::Read;
use std::process::ExitCode;
use ujam::trace::json::{self, Value};

fn main() -> ExitCode {
    match run() {
        Ok(summary) => {
            println!("trace OK: {summary}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("invalid trace: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<String, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let chrome = args.iter().any(|a| a == "--chrome");
    let text = match args.iter().find(|a| !a.starts_with("--")) {
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?
        }
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            buf
        }
    };
    let doc = json::parse(&text)?;
    if chrome {
        return check_chrome(&doc);
    }

    let spans = doc
        .get("spans")
        .and_then(|s| s.as_array())
        .ok_or("missing spans array")?;
    let names: Vec<&str> = spans
        .iter()
        .filter_map(|s| s.get("name")?.as_str())
        .collect();
    for pass in [
        "select-loops",
        "build-tables",
        "search-space",
        "apply-transform",
    ] {
        if !names.contains(&pass) {
            return Err(format!("no span for pass {pass:?} (have {names:?})"));
        }
    }

    let counters = doc
        .get("counters")
        .and_then(|c| c.as_array())
        .ok_or("missing counters array")?;
    if counters.is_empty() {
        return Err("counters array is empty".to_string());
    }

    let explain = doc
        .get("explain")
        .and_then(|e| e.as_array())
        .ok_or("missing explain array")?;
    // Every candidate carries one of the known fates — catching a
    // renamed or novel verdict the renderers would silently mislabel —
    // and exactly one of them wins.
    const VERDICTS: [&str; 7] = [
        "won",
        "dominated",
        "infeasible",
        "pruned_upset",
        "pruned_registers",
        "pruned_divisibility",
        "pruned_code_size",
    ];
    let mut winners = 0usize;
    for (i, e) in explain.iter().enumerate() {
        let verdict = e
            .get("verdict")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("explain record {i}: missing verdict"))?;
        if !VERDICTS.contains(&verdict) {
            return Err(format!("explain record {i}: unknown verdict {verdict:?}"));
        }
        if verdict == "won" {
            winners += 1;
        }
    }
    if winners != 1 {
        return Err(format!(
            "expected exactly one winning candidate, found {winners}"
        ));
    }

    Ok(format!(
        "{} spans, {} counters, {} candidates, 1 winner",
        spans.len(),
        counters.len(),
        explain.len()
    ))
}

/// Checks a `--trace=chrome` export: a bare trace-event array with only
/// complete (`X`) and metadata (`M`) phases, numerically timestamped
/// complete events, and one per pipeline pass.
fn check_chrome(doc: &Value) -> Result<String, String> {
    let events = doc.as_array().ok_or("top level is not an array")?;
    let mut complete = 0usize;
    let mut threads = 0usize;
    let mut names: Vec<&str> = Vec::new();
    for (i, event) in events.iter().enumerate() {
        let ph = event
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        match ph {
            "M" => threads += 1,
            "X" => {
                complete += 1;
                for key in ["ts", "dur", "pid", "tid"] {
                    if event.get(key).and_then(Value::as_f64).is_none() {
                        return Err(format!("event {i}: missing numeric {key}"));
                    }
                }
                names.push(
                    event
                        .get("name")
                        .and_then(Value::as_str)
                        .ok_or_else(|| format!("event {i}: missing name"))?,
                );
            }
            other => return Err(format!("event {i}: unexpected phase {other:?}")),
        }
    }
    for pass in [
        "select-loops",
        "build-tables",
        "search-space",
        "apply-transform",
    ] {
        if !names.contains(&pass) {
            return Err(format!("no complete event for pass {pass:?}"));
        }
    }
    if threads == 0 {
        return Err("no thread_name metadata events".to_string());
    }
    Ok(format!(
        "chrome: {complete} complete events on {threads} named threads"
    ))
}
