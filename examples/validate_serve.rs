//! CI helper: validates a `ujam serve` reply stream.
//!
//! `ci.sh` pipes three NDJSON requests through the daemon — a valid
//! kernel request, its exact duplicate, and one malformed line — and
//! feeds the captured replies (file argument, or stdin when absent)
//! through this checker.  It pins the serving-layer contract: one
//! strict-JSON reply per request, in order; the duplicate served from
//! the decision cache with a bitwise-identical decision; the malformed
//! line answered with a structured error, not a dropped connection.
//!
//! With `--hello` the stream came over TCP (`ujam request --tcp
//! --show-hello`): the first line must then be the versioned handshake
//! ack, followed by the same three replies.

use std::io::Read;
use std::process::ExitCode;
use ujam::trace::json::{self, Value};

fn main() -> ExitCode {
    match run() {
        Ok(summary) => {
            println!("serve replies OK: {summary}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("invalid serve replies: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn field<'a>(doc: &'a Value, name: &str) -> Result<&'a Value, String> {
    doc.get(name)
        .ok_or_else(|| format!("missing field {name:?}"))
}

fn run() -> Result<String, String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let hello = args.first().map(String::as_str) == Some("--hello");
    if hello {
        args.remove(0);
    }
    let text = match args.first() {
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?
        }
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            buf
        }
    };
    let mut lines: Vec<&str> = text.lines().collect();
    let expected = if hello { 4 } else { 3 };
    if lines.len() != expected {
        return Err(format!("expected {expected} replies, got {}", lines.len()));
    }
    if hello {
        let ack = json::parse(lines.remove(0))
            .map_err(|e| format!("handshake ack is not strict JSON: {e}"))?;
        if field(&ack, "ok")? != &Value::Bool(true) {
            return Err(format!(
                "handshake rejected: {}",
                text.lines().next().unwrap()
            ));
        }
        let protocol = field(&ack, "protocol")?
            .as_f64()
            .ok_or("handshake ack: protocol is not a number")?;
        if protocol < 1.0 {
            return Err(format!("handshake ack: bad protocol version {protocol}"));
        }
    }
    let docs: Vec<Value> = lines
        .iter()
        .enumerate()
        .map(|(i, line)| {
            json::parse(line).map_err(|e| format!("reply {i} is not strict JSON: {e}"))
        })
        .collect::<Result<_, _>>()?;

    // Reply 0: fresh computation for the first request.
    let first = &docs[0];
    if field(first, "ok")? != &Value::Bool(true) {
        return Err(format!("reply 0 not ok: {}", lines[0]));
    }
    if field(first, "cached")? != &Value::Bool(false) {
        return Err("reply 0 claims to be cached on a cold cache".to_string());
    }
    let unroll = field(first, "unroll")?
        .as_array()
        .ok_or("reply 0: unroll is not an array")?;
    if unroll.is_empty() {
        return Err("reply 0: empty unroll vector".to_string());
    }
    for name in ["nest", "balance", "original_balance", "registers"] {
        field(first, name)?;
    }

    // Reply 1: the duplicate must be cache-served, decision identical.
    let second = &docs[1];
    if field(second, "cached")? != &Value::Bool(true) {
        return Err(format!("duplicate not served from cache: {}", lines[1]));
    }
    for name in ["nest", "unroll", "balance", "original_balance", "registers"] {
        if field(first, name)? != field(second, name)? {
            return Err(format!(
                "cache changed the decision: field {name:?} differs"
            ));
        }
    }

    // Reply 2: the malformed line gets a structured error, id null.
    let third = &docs[2];
    if field(third, "ok")? != &Value::Bool(false) {
        return Err(format!("malformed request not rejected: {}", lines[2]));
    }
    if field(third, "id")? != &Value::Null {
        return Err("malformed request: unrecoverable id must be null".to_string());
    }
    let error = field(third, "error")?;
    let kind = error
        .get("kind")
        .and_then(Value::as_str)
        .ok_or("error reply without a kind")?;
    let message = error
        .get("message")
        .and_then(Value::as_str)
        .ok_or("error reply without a message")?;
    if message.is_empty() {
        return Err("error reply with an empty message".to_string());
    }

    let prefix = if hello {
        "handshake acked, 3 replies"
    } else {
        "3 replies"
    };
    Ok(format!(
        "{prefix}, duplicate cache-served, malformed line answered with {kind:?}"
    ))
}
