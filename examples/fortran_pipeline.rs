//! The source-to-source workflow the paper's Memoria tool provided:
//! Fortran in, optimized Fortran out.
//!
//! Both fallible stages — parsing and optimization — report their errors
//! instead of unwrapping, which is the shape a real front end wants.
//!
//! Run with `cargo run --example fortran_pipeline`.

use std::process::ExitCode;
use ujam::core::optimize;
use ujam::fortran::{emit, parse};
use ujam::machine::MachineModel;
use ujam::sim::simulate;

const SOURCE: &str = "
      SUBROUTINE MXV
C     y <- y + M x, column-major sweep (LINPACK dmxpy shape)
      DIMENSION Y(240), X(240), M(244,244)
      DO 10 J = 1, 240
      DO 10 I = 1, 240
      Y(I) = Y(I) + X(J) * M(I,J)
 10   CONTINUE
      END
";

fn main() -> ExitCode {
    println!("--- input ---{SOURCE}");
    let nest = match parse(SOURCE) {
        Ok(nest) => nest,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let machine = MachineModel::dec_alpha();

    let plan = match optimize(&nest, &machine) {
        Ok(plan) => plan,
        Err(e) => {
            eprintln!("could not optimize {}: {e}", nest.name());
            return ExitCode::FAILURE;
        }
    };
    println!(
        "--- analysis: unroll {:?}, balance {:.2} -> {:.2} (machine {:.2}) ---\n",
        plan.unroll,
        plan.original.balance,
        plan.predicted.balance,
        machine.balance()
    );

    println!("--- output ---\n{}", emit(&plan.nest));

    let before = simulate(&nest, &machine);
    let after = simulate(&plan.nest, &machine);
    println!(
        "simulated on {}: {:.0} -> {:.0} cycles ({:.2}x)",
        machine.name(),
        before.cycles,
        after.cycles,
        before.cycles / after.cycles
    );
    ExitCode::SUCCESS
}
