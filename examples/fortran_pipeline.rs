//! The source-to-source workflow the paper's Memoria tool provided:
//! Fortran in, optimized Fortran out.
//!
//! Run with `cargo run --example fortran_pipeline`.

use ujam::core::optimize;
use ujam::fortran::{emit, parse};
use ujam::machine::MachineModel;
use ujam::sim::simulate;

const SOURCE: &str = "
      SUBROUTINE MXV
C     y <- y + M x, column-major sweep (LINPACK dmxpy shape)
      DIMENSION Y(240), X(240), M(244,244)
      DO 10 J = 1, 240
      DO 10 I = 1, 240
      Y(I) = Y(I) + X(J) * M(I,J)
 10   CONTINUE
      END
";

fn main() {
    println!("--- input ---{SOURCE}");
    let nest = parse(SOURCE).expect("the subset parser accepts this");
    let machine = MachineModel::dec_alpha();

    let plan = optimize(&nest, &machine);
    println!(
        "--- analysis: unroll {:?}, balance {:.2} -> {:.2} (machine {:.2}) ---\n",
        plan.unroll,
        plan.original.balance,
        plan.predicted.balance,
        machine.balance()
    );

    println!("--- output ---\n{}", emit(&plan.nest));

    let before = simulate(&nest, &machine);
    let after = simulate(&plan.nest, &machine);
    println!(
        "simulated on {}: {:.0} -> {:.0} cycles ({:.2}x)",
        machine.name(),
        before.cycles,
        after.cycles,
        before.cycles / after.cycles
    );
}
