//! Quickstart: optimize the paper's §3.3 example loop end to end.
//!
//! The optimizer returns `Result<Optimized, OptimizeError>` — this
//! example shows the graceful path: report the error and exit instead of
//! unwrapping.
//!
//! Run with `cargo run --example quickstart`.

use std::process::ExitCode;
use ujam::core::optimize;
use ujam::ir::transform::scalar_replacement;
use ujam::ir::NestBuilder;
use ujam::machine::MachineModel;
use ujam::sim::simulate;

fn main() -> ExitCode {
    // DO J = 1, 2N ; DO I = 1, M ; A(J) = A(J) + B(I)
    let nest = NestBuilder::new("intro")
        .array("A", &[512])
        .array("B", &[512])
        .loop_("J", 1, 512)
        .loop_("I", 1, 512)
        .stmt("A(J) = A(J) + B(I)")
        .build();

    let machine = MachineModel::dec_alpha();
    println!(
        "machine: {} (balance {})",
        machine.name(),
        machine.balance()
    );
    println!("\noriginal loop:\n{nest}");

    // A malformed nest surfaces here as an `OptimizeError`, not a panic.
    let plan = match optimize(&nest, &machine) {
        Ok(plan) => plan,
        Err(e) => {
            eprintln!("could not optimize {}: {e}", nest.name());
            return ExitCode::FAILURE;
        }
    };
    println!("chosen unroll vector: {:?}", plan.unroll);
    println!(
        "predicted balance: {:.3} -> {:.3} (machine balance {:.3})",
        plan.original.balance,
        plan.predicted.balance,
        machine.balance()
    );
    println!(
        "memory ops / flops: {}/{} -> {}/{}",
        plan.original.memory_ops,
        plan.original.flops,
        plan.predicted.memory_ops,
        plan.predicted.flops
    );

    println!("\nafter unroll-and-jam:\n{}", plan.nest);

    let replaced = scalar_replacement(&plan.nest);
    println!("after scalar replacement:\n{}", replaced.nest);
    println!(
        "loads {} stores {} registers {}",
        replaced.stats.loads, replaced.stats.stores, replaced.stats.registers
    );

    let before = simulate(&nest, &machine);
    let after = simulate(&plan.nest, &machine);
    println!(
        "\nsimulated: {:.0} -> {:.0} cycles ({:.2}x speedup)",
        before.cycles,
        after.cycles,
        before.cycles / after.cycles
    );
    ExitCode::SUCCESS
}
