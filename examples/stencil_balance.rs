//! Why the cache model matters: the jacobi stencil under the all-hits
//! model versus the §3.2 cache-aware model.
//!
//! Run with `cargo run --release --example stencil_balance`.

use ujam::core::{optimize_with, BalanceModel};
use ujam::kernels::kernel;
use ujam::machine::MachineModel;
use ujam::reuse::{nest_cache_cost, Localized};
use ujam::sim::simulate;

fn main() {
    let k = kernel("jacobi").expect("jacobi is in the suite");
    let nest = k.nest();
    let machine = MachineModel::dec_alpha();

    println!("kernel: {} — {}\n{nest}", k.name, k.description);
    let inner = Localized::innermost(nest.depth());
    println!(
        "Equation 1 cache lines/iteration (innermost localized): {:.3}",
        nest_cache_cost(&nest, &inner, machine.line_elems())
    );
    println!(
        "with the J loop localized (what unrolling J buys): {:.3}",
        nest_cache_cost(
            &nest,
            &Localized::with_unrolled(nest.depth(), &[0]),
            machine.line_elems()
        )
    );

    let baseline = simulate(&nest, &machine);
    for (label, model) in [
        ("all-hits model (Carr-Kennedy '94)", BalanceModel::AllHits),
        ("cache-aware model (this paper)", BalanceModel::CacheAware),
    ] {
        let plan = optimize_with(&nest, &machine, model).expect("valid nest");
        let run = simulate(&plan.nest, &machine);
        println!(
            "\n{label}: unroll {:?}\n  predicted balance {:.3} -> {:.3}\n  simulated {:.0} cycles ({:.2}x vs original), miss rate {:.1}%",
            plan.unroll,
            plan.original.balance,
            plan.predicted.balance,
            run.cycles,
            baseline.cycles / run.cycles,
            100.0 * run.miss_rate()
        );
    }
    println!(
        "\nThe all-hits model sees no reason to unroll jacobi (its M/F is already\nlow); only the cache term exposes the group reuse between A(I,J-1),\nA(I,J) and A(I,J+1) that unrolling J converts into register reuse."
    );
}
