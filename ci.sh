#!/usr/bin/env bash
# Local CI gate. The workspace has no external dependencies, so everything
# runs with --offline (the build environment has no crates.io registry).
set -euxo pipefail
cd "$(dirname "$0")"

cargo build --release --offline --workspace --all-targets
cargo test -q --offline --workspace
cargo fmt --all -- --check
cargo clippy --offline --workspace --all-targets -- -D warnings
