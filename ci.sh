#!/usr/bin/env bash
# Local CI gate. The workspace has no external dependencies, so everything
# runs with --offline (the build environment has no crates.io registry).
set -euxo pipefail
cd "$(dirname "$0")"

cargo build --release --offline --workspace --all-targets
cargo test -q --offline --workspace
cargo fmt --all -- --check
cargo clippy --offline --workspace --all-targets -- -D warnings

# Feature matrix: the same gates with the explicit SIMD kernels
# compiled in.  The default build must stay portable (and free of
# unsafe code); the simd build must stay green and clippy-clean, and
# the SIMD ≡ scalar property tests then run against the real vector
# paths instead of passing vacuously.
cargo build --release --offline --workspace --all-targets --features simd
cargo test -q --offline --workspace --features simd
cargo clippy --offline --workspace --all-targets --features simd -- -D warnings

# Observability smoke test: --trace=json must emit exactly one JSON
# document on stdout, accepted by the in-tree strict parser, with a
# provenance table behind it (std-only check, no external tools).
./target/release/ujam optimize dmxpy0 --explain --trace=json > /tmp/ujam_trace.json
cargo run --release --offline --quiet --example validate_trace -- /tmp/ujam_trace.json

# Chrome trace export: --trace=chrome must emit a strictly-parseable
# trace-event array with a complete event per pipeline pass.
./target/release/ujam optimize dmxpy0 --trace=chrome > /tmp/ujam_chrome.json
cargo run --release --offline --quiet --example validate_trace -- --chrome /tmp/ujam_chrome.json

# Bench smoke test: every bench harness must build, and a quick run of
# the search-scaling bench must emit a schema-valid BENCH_search.json
# (winner agreement across the naive / summed-area / pruned engines —
# and across SIMD dispatch levels — is checked inside the bench and
# again by the validator).  Runs at both feature sets: the default
# document must report simd level "scalar", the simd one whatever the
# host detects.
cargo bench --offline --workspace --no-run
cargo bench --offline -p ujam-bench --bench search_scaling -- --quick --out /tmp/ujam_bench_search.json
cargo run --release --offline --quiet --example validate_search_bench -- /tmp/ujam_bench_search.json
grep -q '"simd_level":"scalar"' /tmp/ujam_bench_search.json
cargo bench --offline -p ujam-bench --features simd --bench search_scaling -- --quick --out /tmp/ujam_bench_search_simd.json
cargo run --release --offline --quiet --example validate_search_bench -- /tmp/ujam_bench_search_simd.json

# target-cpu=native smoke: the simd build must also hold up when the
# compiler itself is free to autovectorise everything (a separate
# target dir keeps the differently-flagged artifacts from thrashing
# the shared cache).
RUSTFLAGS="-C target-cpu=native" CARGO_TARGET_DIR=target/native \
  cargo bench --offline -p ujam-bench --features simd --bench search_scaling -- --quick --out /tmp/ujam_bench_search_native.json
cargo run --release --offline --quiet --example validate_search_bench -- /tmp/ujam_bench_search_native.json

# Register-tile smoke: a k = 3 search over a deep (4-loop) kernel with a
# code budget must produce a schema-valid trace document whose explain
# ledger balances (validate_trace re-checks the per-candidate accounting,
# now including pruned_code_size fates).
./target/release/ujam optimize tensor4 --max-unroll-loops=3 --code-budget=48 --explain --trace=json > /tmp/ujam_tile_trace.json
cargo run --release --offline --quiet --example validate_trace -- /tmp/ujam_tile_trace.json

# Profiler smoke: `ujam profile` must emit a schema-valid versioned
# reuse-distance report whose per-array sections reconcile with the
# aggregate, and the matmul kernel must land inside the known-kernel
# sanity bound (sa miss rate in (0, 50%]).  The alias and a custom
# geometry both go through the validator.
./target/release/ujam profile --kernel matmul > /tmp/ujam_profile.json
cargo run --release --offline --quiet --example validate_profile -- --kernel mmjki /tmp/ujam_profile.json
./target/release/ujam profile jacobi --cache-geometry=4096:32:2 --profile-out /tmp/ujam_profile_jacobi.json
cargo run --release --offline --quiet --example validate_profile -- /tmp/ujam_profile_jacobi.json

# Serve smoke test: three NDJSON requests through the daemon's stdin — a
# kernel request, its exact duplicate (must be cache-served with an
# identical decision), and one malformed line (must get a structured
# error reply, not a dropped connection).  --batch 1 keeps the duplicate
# strictly after the original so the cache hit is deterministic.
printf '%s\n' \
  '{"id":"1","kernel":"dmxpy0"}' \
  '{"id":"2","kernel":"dmxpy0"}' \
  'this is not json' \
  | ./target/release/ujam serve --workers 2 --batch 1 > /tmp/ujam_serve_replies.ndjson
cargo run --release --offline --quiet --example validate_serve -- /tmp/ujam_serve_replies.ndjson

# Register-tile serve round-trip: the protocol's max_unroll_loops /
# code_budget knobs reach the search — a deep kernel served at k = 3
# answers ok with a full-depth (4-component) unroll vector.
printf '%s\n' \
  '{"id":"rt","kernel":"tensor4","max_unroll_loops":3,"code_budget":48}' \
  | ./target/release/ujam serve --workers 1 > /tmp/ujam_serve_tile.ndjson
grep -q '"ok":true' /tmp/ujam_serve_tile.ndjson
grep -Eq '"unroll":\[[0-9]+,[0-9]+,[0-9]+,[0-9]+\]' /tmp/ujam_serve_tile.ndjson

# Cost-model serve round-trip: the protocol's cost_model field reaches
# the search — the same kernel served under the analytic and the
# profiled backend must both answer ok, and an unknown spelling must be
# a structured error reply, not a dropped connection.
printf '%s\n' \
  '{"id":"cm1","kernel":"dmxpy0","cost_model":"analytic"}' \
  '{"id":"cm2","kernel":"dmxpy0","cost_model":"profiled"}' \
  '{"id":"cm3","kernel":"dmxpy0","cost_model":"exact"}' \
  | ./target/release/ujam serve --workers 1 --batch 1 > /tmp/ujam_serve_cost.ndjson
[ "$(grep -c '"ok":true' /tmp/ujam_serve_cost.ndjson)" = 2 ]
grep -q 'unknown cost_model' /tmp/ujam_serve_cost.ndjson

# Metrics smoke: one optimize request and one stats round-trip over a
# Unix socket; the daemon's snapshot must count exactly that request
# (the stats query itself is admin traffic, not a request).
UJAM_SOCK=/tmp/ujam_ci.sock
rm -f "$UJAM_SOCK"
./target/release/ujam serve --socket "$UJAM_SOCK" --workers 1 &
UJAM_SERVE_PID=$!
for _ in $(seq 1 100); do [ -S "$UJAM_SOCK" ] && break; sleep 0.1; done
./target/release/ujam request --socket "$UJAM_SOCK" '{"id":"1","kernel":"dmxpy0"}' | grep -q '"ok":true'
./target/release/ujam stats --socket "$UJAM_SOCK" --json > /tmp/ujam_stats.json
grep -q '"version":1' /tmp/ujam_stats.json
grep -q '"serve.requests":1' /tmp/ujam_stats.json
grep -q '"serve.request_ns":{"count":1,' /tmp/ujam_stats.json
kill "$UJAM_SERVE_PID"
rm -f "$UJAM_SOCK"

# TCP smoke: the same daemon over the event-loop TCP front end.  Bind
# port 0 and discover the chosen port from the daemon's stderr line,
# run the three-request contract through `ujam request` (which opens
# with the versioned handshake), check the sharded-cache stats
# round-trip, then shut the daemon down over its own protocol and wait
# for a clean exit.
./target/release/ujam serve --tcp 127.0.0.1:0 --workers 1 --batch 1 --shards 4 2> /tmp/ujam_tcp_serve.log &
UJAM_TCP_PID=$!
UJAM_TCP_ADDR=""
for _ in $(seq 1 100); do
  UJAM_TCP_ADDR=$(sed -n 's/^serve: tcp listening on //p' /tmp/ujam_tcp_serve.log)
  [ -n "$UJAM_TCP_ADDR" ] && break
  sleep 0.1
done
[ -n "$UJAM_TCP_ADDR" ]
./target/release/ujam request --tcp "$UJAM_TCP_ADDR" --show-hello \
  '{"id":"1","kernel":"dmxpy0"}' \
  '{"id":"2","kernel":"dmxpy0"}' \
  'this is not json' > /tmp/ujam_tcp_replies.ndjson
cargo run --release --offline --quiet --example validate_serve -- --hello /tmp/ujam_tcp_replies.ndjson
./target/release/ujam stats --tcp "$UJAM_TCP_ADDR" --json > /tmp/ujam_tcp_stats.json
grep -q '"version":1' /tmp/ujam_tcp_stats.json
grep -q '"serve.conn.accepted":2' /tmp/ujam_tcp_stats.json
grep -q '"serve.cache.shard0.' /tmp/ujam_tcp_stats.json
grep -q '"serve.cache.shard3.' /tmp/ujam_tcp_stats.json
./target/release/ujam request --tcp "$UJAM_TCP_ADDR" '{"id":"bye","cmd":"shutdown"}' \
  | grep -q '"shutdown":true'
wait "$UJAM_TCP_PID"

# Flight-recorder smoke: a mixed workload through a fresh TCP daemon —
# two fresh kernels, a cache-hit duplicate, a trace-echoing request
# (its reply must carry the opt-in trace_id field), and one forced
# anomaly (deadline_ms=0 on an uncached kernel cannot finish). Capture
# the flight dump and the time-series document and validate both: the
# recent ring holds the workload, the anomaly ring retains the deadline
# miss with a structured reason, the series windows carry derived rates
# and request_ns exemplars whose trace ids resolve in the recorder.
./target/release/ujam serve --tcp 127.0.0.1:0 --workers 1 --batch 1 --slow-ms 2000 \
  2> /tmp/ujam_flight_serve.log &
UJAM_FLIGHT_PID=$!
UJAM_FLIGHT_ADDR=""
for _ in $(seq 1 100); do
  UJAM_FLIGHT_ADDR=$(sed -n 's/^serve: tcp listening on //p' /tmp/ujam_flight_serve.log)
  [ -n "$UJAM_FLIGHT_ADDR" ] && break
  sleep 0.1
done
[ -n "$UJAM_FLIGHT_ADDR" ]
./target/release/ujam request --tcp "$UJAM_FLIGHT_ADDR" \
  '{"id":"f1","kernel":"dmxpy0"}' \
  '{"id":"f2","kernel":"sor"}' \
  '{"id":"f3","kernel":"dmxpy0"}' \
  '{"id":"f4","kernel":"sor","trace":true}' \
  '{"id":"f5","kernel":"jacobi","deadline_ms":0}' \
  > /tmp/ujam_flight_replies.ndjson
grep -q '"id":"f3".*"cached":true' /tmp/ujam_flight_replies.ndjson
grep -q '"id":"f4".*"trace_id":[0-9]' /tmp/ujam_flight_replies.ndjson
grep -q '"id":"f5".*"deadline_exceeded"' /tmp/ujam_flight_replies.ndjson
./target/release/ujam flight --tcp "$UJAM_FLIGHT_ADDR" --json > /tmp/ujam_flight.json
./target/release/ujam stats --tcp "$UJAM_FLIGHT_ADDR" --series --json > /tmp/ujam_series.json
cargo run --release --offline --quiet --example validate_flight -- /tmp/ujam_flight.json /tmp/ujam_series.json
./target/release/ujam flight --tcp "$UJAM_FLIGHT_ADDR" --slow-only --json | grep -q '"recent":\[\]'
./target/release/ujam request --tcp "$UJAM_FLIGHT_ADDR" '{"id":"bye","cmd":"shutdown"}' \
  | grep -q '"shutdown":true'
wait "$UJAM_FLIGHT_PID"

# TCP soak: the hostile-client suite — 100 concurrent handshaking
# clients, pipelined duplicates, oversized and half-written frames,
# bad-version and no-handshake rejections, admission-control sheds,
# read-timeout reaping — all against the poll(2) reactor.
cargo test -q --offline --test serve_tcp

# Serve-latency bench smoke: a quick run must emit a BENCH_serve.json
# whose embedded snapshot matches the workload ground truth (checked
# together with the search artifact captured above).
cargo bench --offline -p ujam-bench --bench serve_latency -- --quick --out /tmp/ujam_bench_serve.json
cargo run --release --offline --quiet --example validate_metrics -- /tmp/ujam_bench_serve.json /tmp/ujam_bench_search.json

# Semantics fuzz: the fixed default seed makes this run deterministic;
# it enumerates every applicable unroll vector over a 200-nest synthetic
# corpus and interprets original vs transformed (and scalar-replaced)
# nests cell-for-cell.
cargo test -q --offline --test semantics_fuzz
