#!/usr/bin/env bash
# Local CI gate. The workspace has no external dependencies, so everything
# runs with --offline (the build environment has no crates.io registry).
set -euxo pipefail
cd "$(dirname "$0")"

cargo build --release --offline --workspace --all-targets
cargo test -q --offline --workspace
cargo fmt --all -- --check
cargo clippy --offline --workspace --all-targets -- -D warnings

# Observability smoke test: --trace=json must emit exactly one JSON
# document on stdout, accepted by the in-tree strict parser, with a
# provenance table behind it (std-only check, no external tools).
./target/release/ujam optimize dmxpy0 --explain --trace=json > /tmp/ujam_trace.json
cargo run --release --offline --quiet --example validate_trace -- /tmp/ujam_trace.json

# Bench smoke test: every bench harness must build, and a quick run of
# the search-scaling bench must emit a schema-valid BENCH_search.json
# (winner agreement across the naive / summed-area / pruned engines is
# checked inside the bench and again by the validator).
cargo bench --offline --workspace --no-run
cargo bench --offline -p ujam-bench --bench search_scaling -- --quick --out /tmp/ujam_bench_search.json
cargo run --release --offline --quiet --example validate_search_bench -- /tmp/ujam_bench_search.json

# Serve smoke test: three NDJSON requests through the daemon's stdin — a
# kernel request, its exact duplicate (must be cache-served with an
# identical decision), and one malformed line (must get a structured
# error reply, not a dropped connection).  --batch 1 keeps the duplicate
# strictly after the original so the cache hit is deterministic.
printf '%s\n' \
  '{"id":"1","kernel":"dmxpy0"}' \
  '{"id":"2","kernel":"dmxpy0"}' \
  'this is not json' \
  | ./target/release/ujam serve --workers 2 --batch 1 > /tmp/ujam_serve_replies.ndjson
cargo run --release --offline --quiet --example validate_serve -- /tmp/ujam_serve_replies.ndjson

# Semantics fuzz: the fixed default seed makes this run deterministic;
# it enumerates every applicable unroll vector over a 200-nest synthetic
# corpus and interprets original vs transformed (and scalar-replaced)
# nests cell-for-cell.
cargo test -q --offline --test semantics_fuzz
