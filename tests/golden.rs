//! Golden snapshots of the deterministic experiment quantities.
//!
//! These pin the *exact* numbers the seeded corpus produces, so any change
//! to the dependence tester, the corpus generator, or the byte-accounting
//! shows up as a reviewable diff here rather than as silent drift in
//! EXPERIMENTS.md.  (The full 1187-routine run is the release binary's
//! job; 400 routines keep this test fast while covering every family.)

use ujam::core::{optimize, tables::CostTables, UnrollSpace};
use ujam::kernels::kernel;
use ujam::machine::MachineModel;

#[test]
fn table1_statistics_are_pinned() {
    // Re-pinned when the corpus generator moved from the unfetchable
    // `rand` crate to the in-tree `ujam-rng` SplitMix64 (the offline
    // registry cannot serve external crates): a different PRNG yields a
    // different — still fixed and fully deterministic — synthetic corpus.
    // The Table 1 *shape* is unchanged: input dependences still dominate
    // (~89% of all dependences) and the byte savings still hold (~89%).
    let r = ujam_bench_table1();
    assert_eq!(r.0, 35024, "total dependences");
    assert_eq!(r.1, 31331, "input dependences");
    assert_eq!(r.2, 400, "routines with dependences");
    assert_eq!(r.3, 1_246_612, "bytes with input deps");
    assert_eq!(r.4, 139_632, "bytes without input deps");
    assert_eq!(
        r.5,
        vec![17, 28, 20, 28, 60, 59, 23, 29, 136],
        "histogram bands"
    );
}

/// Local shim: the bench crate is not a dependency of the facade, so the
/// computation is repeated here from the same public APIs it uses.
fn ujam_bench_table1() -> (usize, usize, usize, usize, usize, Vec<usize>) {
    use ujam::dep::{DepGraph, DepKind};
    let mut routines: Vec<Vec<ujam::ir::LoopNest>> = ujam::kernels::kernels()
        .iter()
        .map(|k| vec![k.nest()])
        .collect();
    routines.extend(ujam::kernels::corpus_subroutines(
        1997,
        400 - routines.len(),
    ));
    let bands = [
        (0.0, 0.0),
        (0.01, 32.99),
        (33.0, 39.99),
        (40.0, 49.99),
        (50.0, 59.99),
        (60.0, 69.99),
        (70.0, 79.99),
        (80.0, 89.99),
        (90.0, 100.0),
    ];
    let (mut total, mut input, mut with, mut b_all, mut b_no) = (0, 0, 0, 0, 0);
    let mut hist = vec![0usize; bands.len()];
    for routine in &routines {
        let (mut deps, mut inp, mut ba, mut bn) = (0usize, 0usize, 0usize, 0usize);
        for nest in routine {
            let g = DepGraph::build(nest);
            let s = g.stats();
            deps += s.total;
            inp += g.count(DepKind::Input);
            ba += s.bytes_all;
            bn += s.bytes_no_input;
        }
        if deps == 0 {
            continue;
        }
        total += deps;
        input += inp;
        with += 1;
        b_all += ba;
        b_no += bn;
        let pct = 100.0 * inp as f64 / deps as f64;
        let band = bands
            .iter()
            .position(|&(lo, hi)| {
                if lo == 0.0 && hi == 0.0 {
                    inp == 0
                } else {
                    pct >= lo && pct <= hi
                }
            })
            .expect("bands cover range");
        hist[band] += 1;
    }
    (total, input, with, b_all, b_no, hist)
}

/// The optimizer's decisions on the kernel suite are pinned per machine:
/// any model change that shifts a chosen unroll vector must update this
/// table (and EXPERIMENTS.md) deliberately.
#[test]
fn chosen_unroll_vectors_are_pinned_on_alpha() {
    let machine = MachineModel::dec_alpha();
    let expect: &[(&str, &[u32])] = &[
        ("jacobi", &[7, 0]),
        ("afold", &[5, 0]),
        ("dmxpy0", &[7, 0]),
        ("dmxpy1", &[7, 0]),
        ("mmjik", &[3, 3, 0]),
        ("mmjki", &[2, 3, 0]),
        ("vpenta.7", &[7, 0]),
        ("sor", &[5, 0]),
        ("shal", &[4, 0]),
        ("collc.2", &[0, 0]),
    ];
    for (name, unroll) in expect {
        let plan =
            optimize(&kernel(name).expect("known kernel").nest(), &machine).expect("valid nest");
        assert_eq!(plan.unroll, *unroll, "{name}");
    }
}

/// Representative table values on the intro loop (spot-pinned).
#[test]
fn intro_loop_tables_are_pinned() {
    let nest = kernel("afold").expect("known").nest();
    let space = UnrollSpace::new(2, &[0], 4);
    let ct = CostTables::build(&nest, &space, 4);
    let rows: Vec<(usize, i64, i64, String, i64)> = space
        .offsets()
        .map(|u| {
            (
                ct.flops(&u),
                ct.loads(&u),
                ct.stores(&u),
                format!("{:.3}", ct.cache_lines(&u)),
                ct.registers(&u),
            )
        })
        .collect();
    assert_eq!(
        rows,
        vec![
            (2, 2, 0, "0.500".into(), 1),
            (4, 2, 0, "0.500".into(), 4),
            (6, 2, 0, "0.500".into(), 5),
            (8, 2, 0, "0.500".into(), 6),
            (10, 2, 0, "0.500".into(), 7),
        ]
    );
}
