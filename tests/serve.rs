//! Integration tests of the `ujam-serve` daemon core: determinism
//! against the sequential batch optimizer, cache effectiveness on
//! replay, and a concurrent soak with hostile traffic mixed in.

use std::io::Cursor;

use ujam::core::optimize_batch;
use ujam::kernels::kernels;
use ujam::machine::MachineModel;
use ujam::serve::{ServeConfig, Server};
use ujam::trace::{json, CollectingSink};

fn test_config() -> ServeConfig {
    ServeConfig {
        workers: 4,
        batch_max: 8,
        cache_capacity: 64,
        shards: 1,
        ..ServeConfig::default()
    }
}

fn counter_total(sink: &CollectingSink, name: &str) -> u64 {
    sink.trace()
        .counter_totals()
        .iter()
        .find(|(_, n, _)| n == name)
        .map(|(_, _, v)| *v)
        .unwrap_or(0)
}

/// One reply line, parsed, with the fields the replay comparison needs.
fn parse_ok(line: &str) -> (String, Vec<u32>, u64, u64, i64) {
    let doc = json::parse(line).expect("reply is valid JSON");
    assert_eq!(
        doc.get("ok"),
        Some(&json::Value::Bool(true)),
        "expected ok reply: {line}"
    );
    let id = doc
        .get("id")
        .and_then(json::Value::as_str)
        .expect("id string")
        .to_string();
    let unroll: Vec<u32> = doc
        .get("unroll")
        .and_then(json::Value::as_array)
        .expect("unroll array")
        .iter()
        .map(|v| v.as_f64().expect("unroll component") as u32)
        .collect();
    let balance = doc
        .get("balance")
        .and_then(json::Value::as_f64)
        .expect("balance")
        .to_bits();
    let original = doc
        .get("original_balance")
        .and_then(json::Value::as_f64)
        .expect("original_balance")
        .to_bits();
    let registers = doc
        .get("registers")
        .and_then(json::Value::as_f64)
        .expect("registers") as i64;
    (id, unroll, balance, original, registers)
}

/// Replaying the whole Table 2 kernel suite through the daemon must give
/// decisions bitwise-identical to the sequential batch optimizer, and a
/// second replay must be served (almost) entirely from the cache.
#[test]
fn suite_replay_matches_sequential_batch_and_second_pass_hits_cache() {
    let suite = kernels();
    let nests: Vec<_> = suite.iter().map(|k| k.nest()).collect();
    let expected = optimize_batch(&nests, &MachineModel::dec_alpha());

    let sink = CollectingSink::new();
    let server = Server::new(test_config(), &sink);
    let mut input = String::new();
    for k in &suite {
        input.push_str(&format!(
            "{{\"id\":\"{}\",\"kernel\":\"{}\"}}\n",
            k.name, k.name
        ));
    }

    let mut out = Vec::new();
    server
        .run(Cursor::new(input.clone()), &mut out)
        .expect("io ok");
    let text = String::from_utf8(out).expect("utf8");
    let replies: Vec<&str> = text.lines().collect();
    assert_eq!(replies.len(), suite.len(), "one reply per kernel");

    for ((reply, kernel), plan) in replies.iter().zip(&suite).zip(&expected) {
        let plan = plan.as_ref().expect("suite kernels all optimize");
        let (id, unroll, balance, original, registers) = parse_ok(reply);
        assert_eq!(id, kernel.name, "replies arrive in request order");
        assert_eq!(unroll, plan.unroll, "{id}: unroll vector diverged");
        assert_eq!(
            balance,
            plan.predicted.balance.to_bits(),
            "{id}: balance not bitwise-identical"
        );
        assert_eq!(
            original,
            plan.original.balance.to_bits(),
            "{id}: original balance not bitwise-identical"
        );
        assert_eq!(
            registers, plan.predicted.registers,
            "{id}: registers diverged"
        );
    }

    // Second replay: identical payloads, now ≥ 90 % cache-served.
    let requests_before = counter_total(&sink, "serve.request");
    let hits_before = counter_total(&sink, "serve.cache.hit");
    let mut out = Vec::new();
    server.run(Cursor::new(input), &mut out).expect("io ok");
    let text = String::from_utf8(out).expect("utf8");
    for (reply, kernel) in text.lines().zip(&suite) {
        let doc = json::parse(reply).expect("valid JSON");
        assert_eq!(
            doc.get("cached"),
            Some(&json::Value::Bool(true)),
            "{}: replay must be cache-served",
            kernel.name
        );
    }
    let requests = counter_total(&sink, "serve.request") - requests_before;
    let hits = counter_total(&sink, "serve.cache.hit") - hits_before;
    assert_eq!(requests, suite.len() as u64);
    assert!(
        hits * 10 >= requests * 9,
        "second replay served {hits}/{requests} from cache (< 90 %)"
    );
}

/// Eight concurrent clients hammer one server with a mix of valid,
/// duplicate, malformed, unknown-kernel, and zero-deadline requests.
/// Every client must get exactly one valid-JSON reply per line, in
/// order; the zero-deadline failures must not poison the cache.
#[test]
fn soak_eight_concurrent_clients_with_hostile_traffic() {
    const CLIENTS: usize = 8;
    // Kernel reserved for zero-deadline requests during the soak: no
    // client ever computes it successfully, so afterwards it must still
    // be absent from the cache.
    const DOOMED: &str = "vpenta.7";

    let sink = CollectingSink::new();
    // batch_max 1 keeps each client's lines strictly sequential, so the
    // intra-client duplicate is a *deterministic* cache hit (inside one
    // micro-batch, duplicates race and either may compute).  Concurrency
    // comes from the eight client threads sharing the server.
    let server = Server::new(
        ServeConfig {
            workers: 4,
            batch_max: 1,
            cache_capacity: 64,
            shards: 1,
            ..ServeConfig::default()
        },
        &sink,
    );
    let valid = ["dmxpy0", "dmxpy1", "jacobi", "sor"];

    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let server = &server;
            scope.spawn(move || {
                let kernel = valid[c % valid.len()];
                let lines = [
                    format!("{{\"id\":\"{c}-a\",\"kernel\":\"{kernel}\"}}"),
                    format!("{{\"id\":\"{c}-b\",\"kernel\":\"{kernel}\"}}"), // duplicate
                    format!("{{\"id\":\"{c}-c\",\"kernel\":\"no-such-kernel\"}}"),
                    format!("this is client {c} speaking, not JSON"),
                    format!("{{\"id\":\"{c}-d\",\"kernel\":\"{DOOMED}\",\"deadline_ms\":0}}"),
                ];
                let input = lines.join("\n") + "\n";
                let mut out = Vec::new();
                server.run(Cursor::new(input), &mut out).expect("io ok");
                let text = String::from_utf8(out).expect("utf8");
                let replies: Vec<&str> = text.lines().collect();
                assert_eq!(
                    replies.len(),
                    lines.len(),
                    "client {c}: exactly one reply per line"
                );

                for reply in &replies {
                    json::parse(reply)
                        .unwrap_or_else(|e| panic!("client {c}: bad reply {reply}: {e}"));
                }
                // Replies come back in request order.
                assert!(
                    replies[0].contains(&format!("\"id\":\"{c}-a\"")),
                    "{}",
                    replies[0]
                );
                assert!(replies[0].contains("\"ok\":true"), "{}", replies[0]);
                assert!(
                    replies[1].contains(&format!("\"id\":\"{c}-b\"")),
                    "{}",
                    replies[1]
                );
                assert!(
                    replies[1].contains("\"cached\":true"),
                    "client {c}: duplicate must be cache-served: {}",
                    replies[1]
                );
                assert!(replies[2].contains("unknown_kernel"), "{}", replies[2]);
                assert!(replies[3].contains("\"id\":null"), "{}", replies[3]);
                assert!(replies[3].contains("bad_request"), "{}", replies[3]);
                assert!(replies[4].contains("deadline_exceeded"), "{}", replies[4]);
            });
        }
    });

    // No deadlock, every client returned.  The doomed kernel was only
    // ever attempted under an already-expired deadline, so the cache
    // must not hold it: a fresh request computes (cached:false) and
    // succeeds.
    let probe = server.handle_line(&format!("{{\"id\":\"probe\",\"kernel\":\"{DOOMED}\"}}"));
    let doc = json::parse(&probe).expect("valid JSON");
    assert_eq!(doc.get("ok"), Some(&json::Value::Bool(true)), "{probe}");
    assert_eq!(
        doc.get("cached"),
        Some(&json::Value::Bool(false)),
        "zero-deadline failures must never be cached: {probe}"
    );

    // Aggregate accounting: every line of every client was counted, and
    // at least the duplicate requests hit the cache.
    let requests = counter_total(&sink, "serve.request");
    assert_eq!(requests, (CLIENTS * 5) as u64 + 1);
    assert_eq!(
        counter_total(&sink, "serve.deadline_exceeded"),
        CLIENTS as u64
    );
    assert!(
        counter_total(&sink, "serve.cache.hit") >= CLIENTS as u64,
        "every intra-client duplicate is cache-served"
    );
}
