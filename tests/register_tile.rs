//! Workspace pins for the n-dimensional register-tiling search: on deep
//! (4–5 loop) kernels with unroll vectors spanning three loops, the
//! pruned table walk, the exhaustive table walk, and the brute-force
//! comparator agree bitwise under every code budget; the `--explain`
//! ledger balances under both the register and the code-size budget;
//! and the default configuration (`max_unroll_loops = 2`, no code
//! budget) reproduces the paper arm's decisions exactly on all 19
//! Table 2 kernels.

use ujam::core::pipeline::{AnalysisCtx, BruteSearch, Pass, SearchSpace, SelectLoops};
use ujam::core::{
    optimize, optimize_configured, search_tables, tables::CostTables, BalanceModel, CancelToken,
    CostModelKind, SearchConfig, UnrollSpace,
};
use ujam::kernels::{deep_kernel, deep_kernels, kernels};
use ujam::machine::MachineModel;
use ujam::metrics::MetricsHandle;
use ujam::trace::{null_sink, CollectingSink, Verdict};

/// The k = 3 register-tiling space over a deep kernel: the three
/// outermost loops, factors up to 4 (every factor divides the trip
/// count of 24), 64 candidates.
fn k3_space(depth: usize) -> UnrollSpace {
    UnrollSpace::with_bounds(depth, &[0, 1, 2], &[3, 3, 3])
}

/// Code budgets exercised against every deep kernel: unbudgeted, a
/// budget no candidate reaches, and a budget that bites (each kernel
/// body is one statement, so copies themselves are capped at 20).
const BUDGETS: [Option<usize>; 3] = [None, Some(1000), Some(20)];

/// The acceptance pin: on every deep kernel × budget, the pruned
/// table-driven search and the materialise-everything brute search
/// return bitwise-identical winners over the k = 3 space.
#[test]
fn deep_pruned_and_brute_winners_agree_under_every_budget() {
    for k in ["tensor4", "assemble4", "bmm4", "bcontract5"] {
        let nest = deep_kernel(k).expect("roster kernel").nest();
        let space = k3_space(nest.depth());
        let machine = MachineModel::dec_alpha();
        for budget in BUDGETS {
            let mut ctx = AnalysisCtx::new(&nest, &machine).expect("valid");
            let table = SearchSpace {
                space: space.clone(),
                model: BalanceModel::CacheAware,
                cost: CostModelKind::Analytic,
                code_budget: budget,
            }
            .run(&mut ctx)
            .expect("table search runs");
            let brute = BruteSearch {
                space: space.clone(),
                code_budget: budget,
            }
            .run(&mut ctx)
            .expect("brute search runs");
            assert_eq!(table.unroll, brute.unroll, "{k} budget {budget:?}");
            assert_eq!(table.offset, brute.offset, "{k} budget {budget:?}");
            if let Some(b) = budget {
                let copies: usize = table.unroll.iter().map(|&u| u as usize + 1).product();
                assert!(
                    copies * nest.body().len() <= b,
                    "{k}: winner {:?} exceeds code budget {b}",
                    table.unroll
                );
            }
        }
    }
}

/// Pruned and exhaustive table walks agree on the k-dimensional spaces
/// too, and the exhaustive walk (which records every over-budget
/// candidate individually instead of up-set-skipping) never prunes.
#[test]
fn deep_pruned_and_exhaustive_table_walks_agree() {
    let machine = MachineModel::dec_alpha();
    for k in ["tensor4", "bcontract5"] {
        let nest = deep_kernel(k).expect("roster kernel").nest();
        let space = k3_space(nest.depth());
        let tables = CostTables::build(&nest, &space, machine.line_elems());
        for model in [BalanceModel::CacheAware, BalanceModel::AllHits] {
            for budget in BUDGETS {
                let (pruned, _) =
                    search_tables(&nest, &machine, &space, &tables, model, true, budget);
                let (exhaustive, skipped) =
                    search_tables(&nest, &machine, &space, &tables, model, false, budget);
                assert_eq!(pruned, exhaustive, "{k} ({model:?}, budget {budget:?})");
                assert_eq!(skipped, 0, "exhaustive walk must not prune");
            }
        }
    }
}

/// The `--explain` ledger balances on a k = 3 search under both
/// monotone budgets at once: a register file small enough to prune and
/// a code budget small enough to bite.  One record per offset, exactly
/// one winner, all six verdict classes sum to the space size, and the
/// `search.pruned_upset` counter matches the records.
#[test]
fn k3_explain_ledger_balances_under_register_and_code_budgets() {
    for k in ["tensor4", "bmm4"] {
        // 8 registers forces PrunedRegisters fates; 20 statements of
        // code budget (bodies are 1 statement) forces PrunedCodeSize.
        let tiny_regs = || MachineModel::builder("tiny-regs").registers(8).build();
        for (machine, budget) in [
            (MachineModel::dec_alpha(), Some(20)),
            (tiny_regs(), None),
            (tiny_regs(), Some(20)),
        ] {
            let nest = deep_kernel(k).expect("roster kernel").nest();
            let space = k3_space(nest.depth());
            let sink = CollectingSink::new();
            let mut ctx = AnalysisCtx::with_sink(&nest, &machine, &sink).expect("valid");
            let outcome = SearchSpace {
                space: space.clone(),
                model: BalanceModel::CacheAware,
                cost: CostModelKind::Analytic,
                code_budget: budget,
            }
            .run_traced(&mut ctx)
            .expect("search runs");
            let trace = sink.take();
            let explains: Vec<_> = trace
                .explains()
                .filter(|e| e.pass == "search-space")
                .collect();
            let tag = format!(
                "{k} (regs {}, budget {budget:?})",
                machine.registers_for_replacement()
            );
            assert_eq!(explains.len(), space.len(), "{tag}: one record per offset");
            let count = |v: Verdict| explains.iter().filter(|e| e.verdict == v).count();
            assert_eq!(
                count(Verdict::Dominated)
                    + count(Verdict::Won)
                    + count(Verdict::Infeasible)
                    + count(Verdict::PrunedUpset)
                    + count(Verdict::PrunedRegisters)
                    + count(Verdict::PrunedDivisibility)
                    + count(Verdict::PrunedCodeSize),
                space.len(),
                "{tag}: the ledger balances"
            );
            assert_eq!(count(Verdict::Won), 1, "{tag}: exactly one winner");
            // Only the roomy-register run pins PrunedCodeSize fates: with
            // a tiny register file the register prune fires first and its
            // up-set skips subsume the over-budget candidates.
            if budget.is_some() && machine.registers_for_replacement() > 20 {
                assert!(
                    count(Verdict::PrunedCodeSize) > 0,
                    "{tag}: a biting code budget must leave PrunedCodeSize fates"
                );
            }
            let winner = explains
                .iter()
                .find(|e| e.verdict == Verdict::Won)
                .expect("one winner");
            assert_eq!(winner.u, outcome.unroll, "{tag}: the winner is the outcome");
            let counter = trace
                .counter_totals()
                .iter()
                .find(|(_, name, _)| name == "search.pruned_upset")
                .map(|&(_, _, v)| v)
                .expect("search emits the pruned_upset counter");
            assert_eq!(
                counter as usize,
                count(Verdict::PrunedUpset),
                "{tag}: counter matches"
            );
        }
    }
}

/// The golden-compatibility pin: the default [`SearchConfig`]
/// (`max_unroll_loops = 2`, no code budget) reproduces [`optimize`]'s
/// decision bitwise on every Table 2 kernel — the register-tiling
/// generalization is invisible until a knob is turned.
#[test]
fn default_config_reproduces_every_suite_decision() {
    for machine in [MachineModel::dec_alpha(), MachineModel::hp_parisc()] {
        for k in kernels() {
            let nest = k.nest();
            let baseline = optimize(&nest, &machine).expect("suite kernels optimize");
            let configured = optimize_configured(
                &nest,
                &machine,
                BalanceModel::CacheAware,
                null_sink(),
                CancelToken::never(),
                MetricsHandle::disabled(),
                SearchConfig::default(),
            )
            .expect("suite kernels optimize");
            assert_eq!(baseline.unroll, configured.unroll, "{}", k.name);
            assert_eq!(
                baseline.predicted.balance.to_bits(),
                configured.predicted.balance.to_bits(),
                "{}: predicted balance must be bitwise identical",
                k.name
            );
        }
    }
}

/// `SelectLoops` honours the dimension cap across the deep roster:
/// `max_loops = k` spans at most k loops, `0` is unbounded, and raising
/// the cap never selects fewer loops.
#[test]
fn select_loops_respects_and_lifts_the_dimension_cap() {
    let machine = MachineModel::dec_alpha();
    for k in deep_kernels() {
        let nest = k.nest();
        let mut dims_by_cap = Vec::new();
        for cap in [1usize, 2, 3, 0] {
            let mut ctx = AnalysisCtx::new(&nest, &machine).expect("valid");
            let space = SelectLoops { max_loops: cap }
                .run(&mut ctx)
                .expect("selects");
            if cap > 0 {
                assert!(
                    space.dims() <= cap,
                    "{}: cap {cap} yielded {} dims",
                    k.name,
                    space.dims()
                );
            }
            assert!(
                !space.loops().contains(&(nest.depth() - 1)),
                "{}: innermost loop must stay out of the space",
                k.name
            );
            dims_by_cap.push(space.dims());
        }
        assert!(
            dims_by_cap.windows(2).all(|w| w[0] <= w[1]),
            "{}: raising the cap shrank the space: {dims_by_cap:?}",
            k.name
        );
        // assemble4 is built so each of its three outer loops leaves a
        // different read operand invariant: all three score positive
        // locality, so unbounded selection exceeds the paper's two.
        // (The contractions' remaining outer loops leave no operand
        // *newly* invariant — anything invariant in the innermost loop
        // is localized already — so their spaces legitimately stay 2-d.)
        if k.name == "assemble4" {
            assert!(
                *dims_by_cap.last().expect("nonempty") > 2,
                "{}: unbounded selection stayed within the 2-loop arm",
                k.name
            );
        }
    }
}
