//! Workspace-level guarantees for the pluggable cache-cost backends:
//! the analytic backend is bitwise-identical to the classic pipeline on
//! the whole Table 2 suite, and the profiled backend can legitimately
//! disagree — on a crafted direct-mapped conflict nest it selects a
//! different winner, which is the whole point of measuring.

use ujam::core::{
    optimize_costed, optimize_with, BalanceModel, CancelToken, CostModelKind, SearchConfig,
};
use ujam::ir::NestBuilder;
use ujam::kernels::kernels;
use ujam::machine::MachineModel;
use ujam::metrics::MetricsHandle;
use ujam::trace::null_sink;

fn costed(
    nest: &ujam::ir::LoopNest,
    machine: &MachineModel,
    cost: CostModelKind,
) -> ujam::core::Optimized {
    optimize_costed(
        nest,
        machine,
        BalanceModel::CacheAware,
        cost,
        null_sink(),
        CancelToken::never(),
        MetricsHandle::disabled(),
        SearchConfig::default(),
    )
    .expect("optimizable nest")
}

/// The acceptance pin: `--cost-model analytic` is not a new code path
/// with similar answers — it is the same decision, bitwise, on every
/// kernel of the suite, on every machine.
#[test]
fn analytic_backend_is_bitwise_identical_on_the_suite() {
    for machine in [
        MachineModel::dec_alpha(),
        MachineModel::hp_parisc(),
        MachineModel::prefetching_risc(),
    ] {
        for k in kernels() {
            let nest = k.nest();
            let classic = optimize_with(&nest, &machine, BalanceModel::CacheAware);
            let analytic =
                std::panic::catch_unwind(|| costed(&nest, &machine, CostModelKind::Analytic));
            match (classic, analytic) {
                (Ok(c), Ok(a)) => {
                    assert_eq!(c.unroll, a.unroll, "{} on {}", k.name, machine.name());
                    // Bitwise, not approximate: the analytic backend must
                    // not perturb the f64 flow at all.
                    assert_eq!(
                        c.predicted.balance.to_bits(),
                        a.predicted.balance.to_bits(),
                        "{} on {}",
                        k.name,
                        machine.name()
                    );
                    assert_eq!(
                        c.original.balance.to_bits(),
                        a.original.balance.to_bits(),
                        "{} on {}",
                        k.name,
                        machine.name()
                    );
                }
                (Err(_), Err(_)) => {} // both reject the nest identically
                (c, a) => panic!(
                    "{} on {}: classic {:?} vs analytic {:?}",
                    k.name,
                    machine.name(),
                    c.map(|p| p.unroll),
                    a.map(|p| p.unroll)
                ),
            }
        }
    }
}

/// A nest built to embarrass Eq. 1.  `A` is 128×8 column-major, so its
/// columns sit exactly 1024 bytes apart — a multiple of the 512-byte
/// set stride of a 1 KiB 2-way cache — and the guard layout puts `B`
/// on the same sets too.  Unjammed, the two ways hold the current `A`
/// column line and the `B` line and everything streams; jamming J by u
/// puts u+2 conflicting lines in every set and the cache thrashes.
/// Eq. 1 knows nothing of conflicts: it sees `B(I)`'s temporal reuse
/// along J and favors deep unroll.  The profiler measures the thrash
/// and refuses.  The two backends must pick different winners here —
/// if they ever agree, the profiled path has degenerated into the
/// analytic one.
#[test]
fn profiled_backend_flips_the_winner_on_a_conflict_nest() {
    let machine = MachineModel::builder("tiny-2w")
        .registers(32)
        .cache(1024, 32, 2)
        .miss(25.0, 1.0)
        .build();
    let nest = NestBuilder::new("conflict")
        .array("A", &[128, 8])
        .array("B", &[128])
        .loop_("J", 1, 8)
        .loop_("I", 1, 128)
        .stmt("A(I,J) = A(I,J) + B(I)")
        .build();
    let analytic = costed(&nest, &machine, CostModelKind::Analytic);
    let profiled = costed(&nest, &machine, CostModelKind::Profiled);
    assert_ne!(
        analytic.unroll, profiled.unroll,
        "analytic and profiled picked the same vector — the conflict nest no longer discriminates"
    );
}

/// Blended sits between the two: it must still produce a valid plan,
/// and its measured stats show the profiler actually ran.
#[test]
fn blended_backend_produces_a_plan() {
    let machine = MachineModel::builder("tiny-dm")
        .registers(32)
        .cache(1024, 32, 1)
        .miss(25.0, 1.0)
        .build();
    let nest = NestBuilder::new("blend")
        .array("A", &[128])
        .array("B", &[128])
        .loop_("J", 1, 8)
        .loop_("I", 1, 128)
        .stmt("A(I) = A(I) + B(I)")
        .build();
    let plan = costed(&nest, &machine, CostModelKind::Blended);
    assert!(!plan.unroll.is_empty());
}

/// Observability surface: a profiled search records `profile.*`
/// metrics, and an analytic one records none — the profiler must be
/// invisible when it is not selected.
#[test]
fn profiled_search_records_metrics_and_analytic_does_not() {
    use std::sync::Arc;
    use ujam::metrics::MetricsRegistry;
    let nest = ujam::kernels::kernel("dmxpy0")
        .expect("known kernel")
        .nest();
    let machine = MachineModel::dec_alpha();
    let run = |cost| {
        let registry = Arc::new(MetricsRegistry::new());
        optimize_costed(
            &nest,
            &machine,
            BalanceModel::CacheAware,
            cost,
            null_sink(),
            CancelToken::never(),
            MetricsHandle::new(Arc::clone(&registry)),
            SearchConfig::default(),
        )
        .expect("optimizable kernel");
        registry.snapshot()
    };
    let profiled = run(CostModelKind::Profiled);
    assert!(
        profiled.counter("profile.candidates") > 0,
        "profiled search must count its candidates"
    );
    assert!(
        profiled.counter("profile.accesses") > 0,
        "profiled search must count tapped accesses"
    );
    assert!(
        profiled
            .histogram("profile.ns")
            .is_some_and(|h| h.count > 0),
        "profiled search must record profiling time"
    );
    let analytic = run(CostModelKind::Analytic);
    assert_eq!(
        analytic.counter("profile.candidates"),
        0,
        "analytic search must record no profiling metrics"
    );
}
