//! Workspace-level property-style tests: random SIV nests through the
//! full pipeline, asserting the table/transform equivalence the paper
//! rests on.
//!
//! Triage note: these were `proptest` strategies at seed time, but the
//! build registry is offline and `proptest` cannot be fetched, so the
//! seed workspace did not even resolve.  The properties are preserved
//! verbatim; the case generator is now a deterministic seeded sweep via
//! the in-tree `ujam-rng` crate (same shrinking-free coverage, fully
//! reproducible).

use ujam::core::streams::replacement_counts_at;
use ujam::core::{tables::CostTables, UnrollSpace};
use ujam::ir::transform::{scalar_replacement, unroll_and_jam};
use ujam::ir::{LoopNest, NestBuilder};
use ujam_rng::Rng;

/// Random 2-deep separable-SIV nests mixing invariant, streaming, and
/// outer-offset references — the shapes unroll-and-jam feeds on.
fn siv_nest(rng: &mut Rng) -> LoopNest {
    let n_offsets = rng.int(1, 4);
    let n_inv = rng.int(0, 3);
    let reduce = rng.chance(0.5);
    let mut rhs = String::from("0.0");
    for _ in 0..n_offsets {
        let di = rng.int(0, 3);
        let dj = rng.int(0, 3);
        rhs.push_str(&format!(" + B(I+{di}, J+{dj})"));
    }
    for _ in 0..n_inv {
        let dj = rng.int(0, 3);
        rhs.push_str(&format!(" + V(J+{dj})"));
    }
    let lhs = if reduce { "V(J)" } else { "X(I,J)" };
    NestBuilder::new("prop")
        .array("B", &[40, 40])
        .array("V", &[40])
        .array("X", &[40, 40])
        .loop_("J", 1, 24)
        .loop_("I", 1, 24)
        .stmt(&format!("{lhs} = {rhs}"))
        .build()
}

const CASES: usize = 48;

/// Table predictions equal real scalar replacement of the real transform
/// at every offset.
#[test]
fn tables_match_transform() {
    let mut rng = Rng::new(0x7ab1e5);
    for case in 0..CASES {
        let nest = siv_nest(&mut rng);
        let space = UnrollSpace::new(2, &[0], 3);
        for u in 0u32..=3 {
            if nest.loops()[0].trip_count() % (u as i64 + 1) != 0 {
                continue;
            }
            let full = space.full_vector(&[u]);
            let transformed = unroll_and_jam(&nest, &full).expect("divisible");
            let stats = scalar_replacement(&transformed).stats;

            let analytic = replacement_counts_at(&nest, &space, &[u]);
            assert_eq!(analytic.loads, stats.loads, "case {case} u={u}");
            assert_eq!(analytic.stores, stats.stores, "case {case} u={u}");
            assert_eq!(analytic.registers, stats.registers, "case {case} u={u}");
            assert_eq!(
                analytic.hoisted_loads, stats.hoisted_loads,
                "case {case} u={u}"
            );

            let ct = CostTables::build(&nest, &space, 4);
            assert_eq!(ct.memory_ops(&[u]), stats.memory_ops() as i64);
            assert_eq!(ct.registers(&[u]), stats.registers as i64);
            assert_eq!(ct.flops(&[u]), transformed.flops_per_iter());
        }
    }
}

/// Monotonicity: unrolling more never increases memory ops per flop.
#[test]
fn memory_ops_per_flop_monotone() {
    let mut rng = Rng::new(0x1347e);
    for case in 0..CASES {
        let nest = siv_nest(&mut rng);
        let space = UnrollSpace::new(2, &[0], 3);
        let ct = CostTables::build(&nest, &space, 4);
        let ratio = |u: u32| ct.memory_ops(&[u]) as f64 / ct.flops(&[u]) as f64;
        for u in 0..3u32 {
            assert!(
                ratio(u + 1) <= ratio(u) + 1e-12,
                "case {case}: ratio rose from {} to {} at u={u}",
                ratio(u),
                ratio(u + 1),
            );
        }
    }
}

/// Registers never shrink with more unrolling (more live values).
#[test]
fn registers_monotone() {
    let mut rng = Rng::new(0x4e9);
    for _ in 0..CASES {
        let nest = siv_nest(&mut rng);
        let space = UnrollSpace::new(2, &[0], 3);
        let ct = CostTables::build(&nest, &space, 4);
        for u in 0..3u32 {
            assert!(ct.registers(&[u + 1]) >= ct.registers(&[u]));
        }
    }
}
