//! Workspace-level property tests: random SIV nests through the full
//! pipeline, asserting the table/transform equivalence the paper rests on.

use proptest::prelude::*;
use ujam::core::streams::replacement_counts_at;
use ujam::core::{tables::CostTables, UnrollSpace};
use ujam::ir::transform::{scalar_replacement, unroll_and_jam};
use ujam::ir::{LoopNest, NestBuilder};

/// Random 2-deep separable-SIV nests mixing invariant, streaming, and
/// outer-offset references — the shapes unroll-and-jam feeds on.
fn siv_nest() -> impl Strategy<Value = LoopNest> {
    (
        proptest::collection::vec((0i64..=3, 0i64..=3), 1..=4),
        proptest::collection::vec(0i64..=3, 0..=3),
        proptest::bool::ANY,
    )
        .prop_map(|(offsets, inv_offsets, reduce)| {
            let mut rhs = String::from("0.0");
            for (di, dj) in &offsets {
                rhs.push_str(&format!(" + B(I+{di}, J+{dj})"));
            }
            for dj in &inv_offsets {
                rhs.push_str(&format!(" + V(J+{dj})"));
            }
            let lhs = if reduce { "V(J)" } else { "X(I,J)" };
            NestBuilder::new("prop")
                .array("B", &[40, 40])
                .array("V", &[40])
                .array("X", &[40, 40])
                .loop_("J", 1, 24)
                .loop_("I", 1, 24)
                .stmt(&format!("{lhs} = {rhs}"))
                .build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Table predictions equal real scalar replacement of the real
    /// transform at every offset.
    #[test]
    fn tables_match_transform(nest in siv_nest(), u in 0u32..=3) {
        let space = UnrollSpace::new(2, &[0], 3);
        prop_assume!(nest.loops()[0].trip_count() % (u as i64 + 1) == 0);
        let full = space.full_vector(&[u]);
        let transformed = unroll_and_jam(&nest, &full).expect("divisible");
        let stats = scalar_replacement(&transformed).stats;

        let analytic = replacement_counts_at(&nest, &space, &[u]);
        prop_assert_eq!(analytic.loads, stats.loads);
        prop_assert_eq!(analytic.stores, stats.stores);
        prop_assert_eq!(analytic.registers, stats.registers);
        prop_assert_eq!(analytic.hoisted_loads, stats.hoisted_loads);

        let ct = CostTables::build(&nest, &space, 4);
        prop_assert_eq!(ct.memory_ops(&[u]), stats.memory_ops() as i64);
        prop_assert_eq!(ct.registers(&[u]), stats.registers as i64);
        prop_assert_eq!(ct.flops(&[u]), transformed.flops_per_iter());
    }

    /// Monotonicity: unrolling more never increases memory ops per flop.
    #[test]
    fn memory_ops_per_flop_monotone(nest in siv_nest()) {
        let space = UnrollSpace::new(2, &[0], 3);
        let ct = CostTables::build(&nest, &space, 4);
        let ratio = |u: u32| ct.memory_ops(&[u]) as f64 / ct.flops(&[u]) as f64;
        for u in 0..3u32 {
            prop_assert!(
                ratio(u + 1) <= ratio(u) + 1e-12,
                "ratio rose from {} to {} at u={}",
                ratio(u),
                ratio(u + 1),
                u
            );
        }
    }

    /// Registers never shrink with more unrolling (more live values).
    #[test]
    fn registers_monotone(nest in siv_nest()) {
        let space = UnrollSpace::new(2, &[0], 3);
        let ct = CostTables::build(&nest, &space, 4);
        for u in 0..3u32 {
            prop_assert!(ct.registers(&[u + 1]) >= ct.registers(&[u]));
        }
    }
}
