//! Property tests for transformation *safety*: dependence-derived unroll
//! bounds and permutation legality must never admit a transformation that
//! the reference interpreter can distinguish from the original.

use proptest::prelude::*;
use ujam::dep::{legal_permutations, safe_unroll_bounds, DepGraph};
use ujam::ir::interp::execute;
use ujam::ir::transform::{permute_loops, unroll_and_jam};
use ujam::ir::{LoopNest, NestBuilder};

/// Random in-place wavefront updates `A(I,J) = f(A(I±di, J±dj), B(I,J))`:
/// the loop-carried dependences these create are exactly what limits
/// unroll-and-jam.
fn carried_nest() -> impl Strategy<Value = LoopNest> {
    (
        proptest::collection::vec((-2i64..=2, -2i64..=2), 1..=3),
        proptest::bool::ANY,
    )
        .prop_map(|(offsets, with_b)| {
            let mut rhs = String::from("0.5");
            for (di, dj) in &offsets {
                rhs.push_str(&format!(" + A(I+{}, J+{})", di + 3, dj + 3));
            }
            if with_b {
                rhs.push_str(" + B(I, J)");
            }
            NestBuilder::new("carried")
                .array("A", &[40, 40])
                .array("B", &[40, 40])
                .loop_("J", 4, 27) // trip 24: divisible by 1,2,3,4,6,8
                .loop_("I", 4, 27)
                .stmt(&format!("A(I+3, J+3) = {rhs}"))
                .build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every unroll amount within the dependence-derived safety bound
    /// preserves the final memory image.
    #[test]
    fn safe_unroll_amounts_preserve_semantics(nest in carried_nest()) {
        let g = DepGraph::build(&nest);
        let bounds = safe_unroll_bounds(&nest, &g);
        let orig = execute(&nest);
        let trip = nest.loops()[0].trip_count();
        for u in 1..=bounds[0].min(7) {
            if trip % (u as i64 + 1) != 0 {
                continue;
            }
            let t = unroll_and_jam(&nest, &[u, 0]).expect("divisible");
            prop_assert_eq!(
                execute(&t),
                orig.clone(),
                "unroll by {} within bound {} changed semantics",
                u,
                bounds[0]
            );
        }
    }

    /// Every permutation the legality test admits preserves the final
    /// memory image.
    #[test]
    fn legal_permutations_preserve_semantics(nest in carried_nest()) {
        let g = DepGraph::build(&nest);
        let orig = execute(&nest);
        for perm in legal_permutations(&g, nest.depth()) {
            let p = permute_loops(&nest, &perm).expect("valid perm");
            prop_assert_eq!(
                execute(&p),
                orig.clone(),
                "legal permutation {:?} changed semantics",
                perm
            );
        }
    }

    /// The safety bound is *useful*: whenever the bound is finite and
    /// small, exceeding it really does change behaviour for at least the
    /// canonical witnesses (spot-checked when divisibility allows).
    #[test]
    fn bound_zero_loops_have_a_reason(nest in carried_nest()) {
        let g = DepGraph::build(&nest);
        let bounds = safe_unroll_bounds(&nest, &g);
        if bounds[0] == 0 {
            // There must be a data dependence that the jam would reverse:
            // some non-input edge with a positive J-component and a
            // possibly-negative inner suffix.
            let found = g.edges().iter().any(|e| {
                e.kind != ujam::dep::DepKind::Input
                    && match e.dist[0] {
                        ujam::dep::Dist::Exact(k) => k >= 1,
                        ujam::dep::Dist::Any => true,
                    }
            });
            prop_assert!(found, "bound 0 without a carried dependence");
        }
    }
}
