//! Property-style tests for transformation *safety*: dependence-derived
//! unroll bounds and permutation legality must never admit a
//! transformation that the reference interpreter can distinguish from
//! the original.
//!
//! Triage note: previously `proptest`-based; the offline registry cannot
//! serve `proptest`, so the generator is now a deterministic seeded
//! sweep over the same distribution via the in-tree `ujam-rng` crate.

use ujam::dep::{legal_permutations, safe_unroll_bounds, DepGraph};
use ujam::ir::interp::execute;
use ujam::ir::transform::{permute_loops, unroll_and_jam};
use ujam::ir::{LoopNest, NestBuilder};
use ujam_rng::Rng;

/// Random in-place wavefront updates `A(I,J) = f(A(I±di, J±dj), B(I,J))`:
/// the loop-carried dependences these create are exactly what limits
/// unroll-and-jam.
fn carried_nest(rng: &mut Rng) -> LoopNest {
    let n_offsets = rng.int(1, 3);
    let with_b = rng.chance(0.5);
    let mut rhs = String::from("0.5");
    for _ in 0..n_offsets {
        let di = rng.int(-2, 2);
        let dj = rng.int(-2, 2);
        rhs.push_str(&format!(" + A(I+{}, J+{})", di + 3, dj + 3));
    }
    if with_b {
        rhs.push_str(" + B(I, J)");
    }
    NestBuilder::new("carried")
        .array("A", &[40, 40])
        .array("B", &[40, 40])
        .loop_("J", 4, 27) // trip 24: divisible by 1,2,3,4,6,8
        .loop_("I", 4, 27)
        .stmt(&format!("A(I+3, J+3) = {rhs}"))
        .build()
}

const CASES: usize = 48;

/// Every unroll amount within the dependence-derived safety bound
/// preserves the final memory image.
#[test]
fn safe_unroll_amounts_preserve_semantics() {
    let mut rng = Rng::new(0x5afe);
    for case in 0..CASES {
        let nest = carried_nest(&mut rng);
        let g = DepGraph::build(&nest);
        let bounds = safe_unroll_bounds(&nest, &g);
        let orig = execute(&nest);
        let trip = nest.loops()[0].trip_count();
        for u in 1..=bounds[0].min(7) {
            if trip % (u as i64 + 1) != 0 {
                continue;
            }
            let t = unroll_and_jam(&nest, &[u, 0]).expect("divisible");
            assert_eq!(
                execute(&t),
                orig,
                "case {case}: unroll by {u} within bound {} changed semantics",
                bounds[0]
            );
        }
    }
}

/// Every permutation the legality test admits preserves the final memory
/// image.
#[test]
fn legal_permutations_preserve_semantics() {
    let mut rng = Rng::new(0x9e2a);
    for case in 0..CASES {
        let nest = carried_nest(&mut rng);
        let g = DepGraph::build(&nest);
        let orig = execute(&nest);
        for perm in legal_permutations(&g, nest.depth()) {
            let p = permute_loops(&nest, &perm).expect("valid perm");
            assert_eq!(
                execute(&p),
                orig,
                "case {case}: legal permutation {perm:?} changed semantics",
            );
        }
    }
}

/// The safety bound is *useful*: whenever the bound is zero there is a
/// carried dependence that the jam would reverse.
#[test]
fn bound_zero_loops_have_a_reason() {
    let mut rng = Rng::new(0xb0bb);
    for case in 0..CASES {
        let nest = carried_nest(&mut rng);
        let g = DepGraph::build(&nest);
        let bounds = safe_unroll_bounds(&nest, &g);
        if bounds[0] == 0 {
            // There must be a data dependence that the jam would reverse:
            // some non-input edge with a positive J-component and a
            // possibly-negative inner suffix.
            let found = g.edges().iter().any(|e| {
                e.kind != ujam::dep::DepKind::Input
                    && match e.dist[0] {
                        ujam::dep::Dist::Exact(k) => k >= 1,
                        ujam::dep::Dist::Any => true,
                    }
            });
            assert!(found, "case {case}: bound 0 without a carried dependence");
        }
    }
}
