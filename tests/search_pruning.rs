//! Workspace-level guarantees for monotone up-set pruning: it never
//! changes the winning unroll vector relative to the exhaustive table
//! walk, the table-driven (pruned) and brute-force (parallel) searches
//! agree on the full kernel suite, and `--explain` accounts for every
//! candidate the pruner skipped.

use ujam::core::pipeline::{AnalysisCtx, BruteSearch, Pass, SearchSpace, SelectLoops};
use ujam::core::{search_tables, tables::CostTables, BalanceModel, CostModelKind};
use ujam::kernels::kernels;
use ujam::machine::MachineModel;
use ujam::trace::{CollectingSink, Verdict};

fn machines() -> Vec<MachineModel> {
    vec![
        MachineModel::dec_alpha(),
        MachineModel::hp_parisc(),
        MachineModel::prefetching_risc(),
    ]
}

/// Select each kernel's search space the same way the pipeline does.
fn pipeline_space(
    nest: &ujam::ir::LoopNest,
    machine: &MachineModel,
) -> Option<ujam::core::UnrollSpace> {
    let mut ctx = AnalysisCtx::new(nest, machine).ok()?;
    SelectLoops::default().run(&mut ctx).ok()
}

/// The satellite pin: pruned and exhaustive table walks return the
/// same winner on every kernel × machine × model, and the exhaustive
/// walk never reports pruned candidates.
#[test]
fn pruning_never_changes_the_winner() {
    for machine in machines() {
        for k in kernels() {
            let nest = k.nest();
            let Some(space) = pipeline_space(&nest, &machine) else {
                continue;
            };
            let tables = CostTables::build(&nest, &space, machine.line_elems());
            for model in [BalanceModel::CacheAware, BalanceModel::AllHits] {
                let (pruned, _) =
                    search_tables(&nest, &machine, &space, &tables, model, true, None);
                let (exhaustive, skipped) =
                    search_tables(&nest, &machine, &space, &tables, model, false, None);
                assert_eq!(
                    pruned,
                    exhaustive,
                    "{} on {} ({model:?})",
                    k.name,
                    machine.name()
                );
                assert_eq!(skipped, 0, "exhaustive walk must not prune");
            }
        }
    }
}

/// The table-driven search (with pruning live) and the parallel brute
/// search return bitwise-identical winners on the full kernel suite.
#[test]
fn pruned_table_and_parallel_brute_searches_agree() {
    let machine = MachineModel::dec_alpha();
    for k in kernels() {
        let nest = k.nest();
        let Ok(mut ctx) = AnalysisCtx::new(&nest, &machine) else {
            continue;
        };
        let Ok(space) = SelectLoops::default().run(&mut ctx) else {
            continue;
        };
        let table = SearchSpace {
            space: space.clone(),
            model: BalanceModel::CacheAware,
            cost: CostModelKind::Analytic,
            code_budget: None,
        }
        .run(&mut ctx);
        let Ok(table) = table else {
            continue;
        };
        let brute = BruteSearch {
            space: space.clone(),
            code_budget: None,
        }
        .run(&mut ctx)
        .expect("brute search runs wherever the table search does");
        assert_eq!(table.unroll, brute.unroll, "{}", k.name);
        assert_eq!(table.offset, brute.offset, "{}", k.name);
    }
}

/// The `--explain` ledger balances on every kernel: one record per
/// offset of the space, exactly one winner, evaluated + pruned_upset +
/// pruned_registers + pruned_divisibility + pruned_code_size = space
/// size, and the `search.pruned_upset` counter equals the number of
/// `pruned_upset` records.
#[test]
fn explain_accounts_for_every_candidate() {
    for machine in machines() {
        for k in kernels() {
            let nest = k.nest();
            let sink = CollectingSink::new();
            let Ok(mut ctx) = AnalysisCtx::with_sink(&nest, &machine, &sink) else {
                continue;
            };
            let Ok(space) = SelectLoops::default().run(&mut ctx) else {
                continue;
            };
            let outcome = SearchSpace {
                space: space.clone(),
                model: BalanceModel::CacheAware,
                cost: CostModelKind::Analytic,
                code_budget: None,
            }
            .run_traced(&mut ctx);
            let Ok(outcome) = outcome else {
                continue;
            };
            let trace = sink.take();
            let explains: Vec<_> = trace
                .explains()
                .filter(|e| e.pass == "search-space")
                .collect();
            let tag = format!("{} on {}", k.name, machine.name());
            assert_eq!(explains.len(), space.len(), "{tag}: one record per offset");
            let count = |v: Verdict| explains.iter().filter(|e| e.verdict == v).count();
            let evaluated =
                count(Verdict::Dominated) + count(Verdict::Won) + count(Verdict::Infeasible);
            let pruned_upset = count(Verdict::PrunedUpset);
            assert_eq!(
                evaluated
                    + pruned_upset
                    + count(Verdict::PrunedRegisters)
                    + count(Verdict::PrunedDivisibility)
                    + count(Verdict::PrunedCodeSize),
                space.len(),
                "{tag}: the ledger balances"
            );
            assert_eq!(count(Verdict::Won), 1, "{tag}: exactly one winner");
            let winner = explains
                .iter()
                .find(|e| e.verdict == Verdict::Won)
                .expect("one winner");
            assert_eq!(winner.u, outcome.unroll, "{tag}: the winner is the outcome");
            let counter = trace
                .counter_totals()
                .iter()
                .find(|(_, name, _)| name == "search.pruned_upset")
                .map(|&(_, _, v)| v)
                .expect("search emits the pruned_upset counter");
            assert_eq!(counter as usize, pruned_upset, "{tag}: counter matches");
        }
    }
}
