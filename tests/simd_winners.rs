//! Cross-level decision pins: the optimizer's winners on the full
//! Table 2 roster (19 kernels) and the deep register-tiling roster
//! (6 kernels) must be bitwise identical at every SIMD dispatch level.
//!
//! `with_forced_level` clamps to what the host supports, so without the
//! `simd` feature (or on a non-x86 host) every iteration runs the
//! scalar kernels and the pins hold trivially; `ci.sh` runs the suite
//! again with `--features simd`, where the comparison is real.

use ujam::core::simd::{with_forced_level, Level};
use ujam::core::{optimize, optimize_configured, BalanceModel, CancelToken, SearchConfig};
use ujam::kernels::{deep_kernels, kernels};
use ujam::machine::MachineModel;
use ujam::metrics::MetricsHandle;
use ujam::trace::null_sink;

const LEVELS: [Level; 3] = [Level::Scalar, Level::Sse2, Level::Avx2];

#[test]
fn suite_winners_identical_at_every_level() {
    for machine in [MachineModel::dec_alpha(), MachineModel::hp_parisc()] {
        for k in kernels() {
            let nest = k.nest();
            let scalar = with_forced_level(Level::Scalar, || {
                optimize(&nest, &machine).expect("roster kernel optimizes")
            });
            for level in &LEVELS[1..] {
                let plan = with_forced_level(*level, || {
                    optimize(&nest, &machine).expect("roster kernel optimizes")
                });
                assert_eq!(
                    plan.unroll,
                    scalar.unroll,
                    "{} on {}: winner moved at {level:?}",
                    k.name,
                    machine.name()
                );
                assert_eq!(
                    plan.predicted.balance.to_bits(),
                    scalar.predicted.balance.to_bits(),
                    "{} on {}: predicted balance drifted at {level:?}",
                    k.name,
                    machine.name()
                );
            }
        }
    }
}

#[test]
fn deep_register_tiling_winners_identical_at_every_level() {
    let machine = MachineModel::dec_alpha();
    let config = SearchConfig {
        max_unroll_loops: 3,
        code_budget: Some(48),
    };
    for k in deep_kernels() {
        let nest = k.nest();
        let tile = |level: Level| {
            with_forced_level(level, || {
                optimize_configured(
                    &nest,
                    &machine,
                    BalanceModel::CacheAware,
                    null_sink(),
                    CancelToken::never(),
                    MetricsHandle::disabled(),
                    config,
                )
                .expect("deep kernel optimizes")
            })
        };
        let scalar = tile(Level::Scalar);
        for level in &LEVELS[1..] {
            let plan = tile(*level);
            assert_eq!(
                plan.unroll, scalar.unroll,
                "{}: register-tile winner moved at {level:?}",
                k.name
            );
            assert_eq!(
                plan.predicted.balance.to_bits(),
                scalar.predicted.balance.to_bits(),
                "{}: predicted balance drifted at {level:?}",
                k.name
            );
        }
    }
}
