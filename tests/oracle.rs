//! Cross-crate oracle tests: the paper's precomputed tables must agree
//! exactly with re-analysis of the actually-transformed IR, kernel by
//! kernel — the strongest form of the §5.3 equivalence claim.

use ujam::core::brute::optimize_brute;
use ujam::core::streams::replacement_counts_at;
use ujam::core::{gss_table, gts_table, optimize_in_space, tables::CostTables, UnrollSpace};
use ujam::dep::{safe_unroll_bounds, DepGraph};
use ujam::ir::transform::{scalar_replacement, unroll_and_jam};
use ujam::kernels::kernels;
use ujam::machine::MachineModel;
use ujam::reuse::{group_spatial_sets, group_temporal_sets, Localized, UgsSet};

/// Per-kernel: every table's prefix sums equal the partition sizes of the
/// actually-unrolled nest, at every offset of a 1-D unroll space.
#[test]
fn tables_equal_unrolled_ir_partitions_on_all_kernels() {
    for k in kernels() {
        let nest = k.nest();
        let graph = DepGraph::build(&nest);
        let bounds = safe_unroll_bounds(&nest, &graph);
        let Some(loop_idx) = (0..nest.depth() - 1).find(|&l| bounds[l] >= 3) else {
            continue;
        };
        let space = UnrollSpace::new(nest.depth(), &[loop_idx], 3);
        let l = Localized::innermost(nest.depth());
        let line = 4;

        for u in space.offsets() {
            let full = space.full_vector(&u);
            let unrolled = unroll_and_jam(&nest, &full).expect("within safety bound");
            // Group counts, per UGS, against the real partitions.
            let original_sets = UgsSet::partition(&nest);
            let unrolled_sets = UgsSet::partition(&unrolled);
            for set in &original_sets {
                let gts_t = gts_table(set, &space).prefix_sum(&u);
                let gss_t = gss_table(set, &space, line).prefix_sum(&u);
                let (mut gts_a, mut gss_a) = (0i64, 0i64);
                for us in unrolled_sets
                    .iter()
                    .filter(|s| s.array() == set.array() && s.h() == set.h())
                {
                    gts_a += group_temporal_sets(us, &l).len() as i64;
                    gss_a += group_spatial_sets(us, &l, line).len() as i64;
                }
                assert_eq!(gts_t, gts_a, "{}: GTS {} @ {u:?}", k.name, set.array());
                assert_eq!(gss_t, gss_a, "{}: GSS {} @ {u:?}", k.name, set.array());
            }
            // Memory-op counts against real scalar replacement.
            let stats = scalar_replacement(&unrolled).stats;
            let analytic = replacement_counts_at(&nest, &space, &u);
            assert_eq!(analytic.loads, stats.loads, "{} loads @ {u:?}", k.name);
            assert_eq!(analytic.stores, stats.stores, "{} stores @ {u:?}", k.name);
            assert_eq!(
                analytic.registers, stats.registers,
                "{} registers @ {u:?}",
                k.name
            );
            let ct = CostTables::build(&nest, &space, line);
            assert_eq!(
                ct.memory_ops(&u),
                stats.memory_ops() as i64,
                "{} M(u) @ {u:?}",
                k.name
            );
        }
    }
}

/// The table-driven and brute-force optimizers make identical decisions on
/// every kernel and both machines over a 2-D space where available.
#[test]
fn optimizers_agree_on_two_loop_spaces() {
    for machine in [MachineModel::dec_alpha(), MachineModel::hp_parisc()] {
        for k in kernels() {
            let nest = k.nest();
            let graph = DepGraph::build(&nest);
            let bounds = safe_unroll_bounds(&nest, &graph);
            let eligible: Vec<usize> = (0..nest.depth() - 1).filter(|&l| bounds[l] >= 2).collect();
            if eligible.is_empty() {
                continue;
            }
            let loops = &eligible[..eligible.len().min(2)];
            let space = UnrollSpace::new(nest.depth(), loops, 2);
            let table = optimize_in_space(&nest, &machine, &space).expect("valid nest");
            let brute = optimize_brute(&nest, &machine, &space).expect("valid nest");
            assert_eq!(
                table.unroll,
                brute.unroll,
                "{} on {} disagrees",
                k.name,
                machine.name()
            );
        }
    }
}
