//! End-to-end metrics acceptance: a metrics-enabled daemon's stats
//! snapshot must match the replayed workload's ground truth exactly,
//! replays must be deterministic modulo timing, and the Chrome trace
//! export must account for every span the real optimizer emits.

use std::io::Cursor;
use std::sync::Arc;
use ujam::metrics::{MetricsHandle, MetricsRegistry, MetricsSnapshot};
use ujam::serve::{ServeConfig, Server};
use ujam::trace::json::{self, Value};
use ujam::trace::{ChromeTraceRenderer, CollectingSink};

/// `workers: 1, batch_max: 1` serializes the workload, so every counter
/// (including the cache hit/miss split and anything a trailing stats
/// line observes) is exact replay ground truth.
fn replay(workload: &str) -> (Server<'static>, String) {
    let server = Server::with_metrics(
        ServeConfig {
            workers: 1,
            batch_max: 1,
            cache_capacity: 64,
            shards: 1,
            ..ServeConfig::default()
        },
        ujam::trace::null_sink(),
        MetricsHandle::new(Arc::new(MetricsRegistry::new())),
    );
    let mut out = Vec::new();
    server
        .run(Cursor::new(workload.to_string()), &mut out)
        .expect("in-memory serve");
    (server, String::from_utf8(out).expect("UTF-8 replies"))
}

const WORKLOAD: &str = "{\"id\":\"1\",\"kernel\":\"dmxpy0\"}\n\
                        {\"id\":\"2\",\"kernel\":\"dmxpy0\"}\n\
                        {\"id\":\"3\",\"kernel\":\"mmjki\"}\n\
                        {\"id\":\"4\",\"kernel\":\"no-such-kernel\"}\n";

#[test]
fn stats_snapshot_matches_replay_ground_truth() {
    // The trailing admin line queries the daemon over the same NDJSON
    // stream the requests used.
    let (_, replies) = replay(&format!("{WORKLOAD}{{\"id\":\"q\",\"cmd\":\"stats\"}}\n"));
    let stats_line = replies.lines().last().expect("stats reply");
    let parsed = json::parse(stats_line).expect("stats reply is valid JSON");
    assert_eq!(parsed.get("ok"), Some(&Value::Bool(true)));
    let stats = parsed.get("stats").expect("snapshot embedded");
    assert_eq!(stats.get("version").and_then(Value::as_f64), Some(1.0));

    let counter = |name: &str| {
        stats
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(Value::as_f64)
            .unwrap_or_else(|| panic!("counter {name} present"))
    };
    // Ground truth of WORKLOAD: four optimize requests (the stats line
    // is admin traffic, not a request), one bad kernel, one duplicate.
    assert_eq!(counter("serve.requests"), 4.0);
    assert_eq!(counter("serve.admin_requests"), 1.0);
    assert_eq!(counter("serve.replies_ok"), 3.0);
    assert_eq!(counter("serve.replies_error"), 1.0);
    assert_eq!(counter("serve.cache.hits"), 1.0);
    assert_eq!(counter("serve.cache.misses"), 2.0);

    let hist_count = |name: &str| {
        stats
            .get("histograms")
            .and_then(|h| h.get(name))
            .and_then(|h| h.get("count"))
            .and_then(Value::as_f64)
            .unwrap_or_else(|| panic!("histogram {name} present"))
    };
    assert_eq!(hist_count("serve.request_ns"), 4.0);
    // Two cache misses ran the optimizer, each crossing every pass once.
    for pass in [
        "select-loops",
        "build-tables",
        "search-space",
        "apply-transform",
    ] {
        assert_eq!(hist_count(&format!("pass.{pass}.ns")), 2.0, "pass {pass}");
    }
}

#[test]
fn replayed_workloads_snapshot_identically_modulo_timing() {
    let snap = |(server, _): (Server<'static>, String)| server.metrics_snapshot();
    let a: MetricsSnapshot = snap(replay(WORKLOAD));
    let b: MetricsSnapshot = snap(replay(WORKLOAD));
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.gauges, b.gauges);
    // Histograms agree on the metric set and observation counts; only
    // the timing-valued sums and bucket placements may differ.
    let shape = |s: &MetricsSnapshot| {
        s.histograms
            .iter()
            .map(|(name, h)| (name.clone(), h.count))
            .collect::<Vec<_>>()
    };
    assert_eq!(shape(&a), shape(&b));
    // Batch sizes are not timing-valued, so those histograms match
    // bucket-for-bucket.
    assert_eq!(
        a.histogram("serve.batch_size").expect("recorded").buckets,
        b.histogram("serve.batch_size").expect("recorded").buckets
    );
}

#[test]
fn chrome_export_accounts_for_every_real_optimizer_span() {
    let sink = CollectingSink::new();
    for kernel in ["dmxpy1", "mmjki"] {
        let nest = ujam::kernels::kernel(kernel).expect("known kernel").nest();
        ujam::core::optimize_traced(
            &nest,
            &ujam::machine::MachineModel::dec_alpha(),
            ujam::core::BalanceModel::CacheAware,
            &sink,
        )
        .expect("valid kernel");
    }
    let trace = sink.take();
    let collected = trace.spans().count();
    assert!(collected >= 8, "two pipelines' worth of spans");

    let doc = ChromeTraceRenderer::render(&trace);
    let parsed = json::parse(&doc).expect("chrome export is valid JSON");
    let events = parsed.as_array().expect("bare array");
    let complete = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
        .count();
    assert_eq!(complete, collected);
    // One named timeline row per optimized nest.
    let threads = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("M"))
        .count();
    assert_eq!(threads, 2);
}
