//! Semantics fuzzing: `unroll_and_jam` must preserve program meaning on
//! randomized nests, not just the 19 curated Table 2 kernels.
//!
//! For every nest in a seeded synthetic corpus
//! (`ujam_kernels::synth::corpus`) we enumerate *every* applicable
//! multi-loop unroll vector — each jammable loop's copy count ranges
//! over the divisors of its trip count (the only factors
//! `unroll_and_jam` accepts), clipped to the dependence-analysis safety
//! bound — and assert cell-for-cell that the reference interpreter
//! computes identical results before and after the transformation,
//! including with `scalar_replacement` composed on top.
//!
//! The seed is fixed so CI is deterministic; set `UJAM_FUZZ_SEED` to
//! explore a different corpus locally.  Failures report the minimal
//! failing `(seed, nest, u)` triple in iteration order.

use ujam::dep::{safe_unroll_bounds, DepGraph};
use ujam::ir::interp::{execute, ExecState};
use ujam::ir::transform::{scalar_replacement, unroll_and_jam};
use ujam::ir::LoopNest;
use ujam::kernels::{corpus, corpus_deep};

/// Fixed default so the CI run is reproducible.
const DEFAULT_SEED: u64 = 0x5EED_CA44;
/// The acceptance floor: at least this many seeded nests.
const CORPUS_SIZE: usize = 200;

fn fuzz_seed() -> u64 {
    std::env::var("UJAM_FUZZ_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

/// Exact (bitwise) image of an execution, comparable across runs.
fn cells_bits(state: &ExecState) -> Vec<((String, Vec<i64>), u64)> {
    state
        .cells
        .iter()
        .map(|(k, v)| (k.clone(), v.to_bits()))
        .collect()
}

fn scalars_bits(state: &ExecState) -> Vec<(String, u64)> {
    state
        .scalars
        .iter()
        .map(|(k, v)| (k.clone(), v.to_bits()))
        .collect()
}

/// Every applicable unroll vector for `nest`: per jammable loop, copy
/// counts that divide the trip count and respect the safety bound; the
/// innermost component is always zero (§4.1).
fn applicable_vectors(nest: &LoopNest) -> Vec<Vec<u32>> {
    let graph = DepGraph::build(nest);
    let bounds = safe_unroll_bounds(nest, &graph);
    let depth = nest.depth();
    let mut per_loop: Vec<Vec<u32>> = Vec::with_capacity(depth);
    for (l, lp) in nest.loops().iter().enumerate() {
        if l == depth - 1 {
            per_loop.push(vec![0]);
            continue;
        }
        let trip = lp.trip_count();
        let choices: Vec<u32> = (1..=trip)
            .filter(|copies| trip % copies == 0)
            .map(|copies| (copies - 1) as u32)
            .filter(|&u| u <= bounds[l])
            .collect();
        per_loop.push(choices);
    }
    // Cartesian product, lexicographic — so the first reported failure
    // is minimal in that order.
    let mut vectors = vec![Vec::new()];
    for choices in &per_loop {
        let mut next = Vec::with_capacity(vectors.len() * choices.len());
        for v in &vectors {
            for &c in choices {
                let mut v = v.clone();
                v.push(c);
                next.push(v);
            }
        }
        vectors = next;
    }
    vectors
}

#[test]
fn unroll_and_jam_preserves_semantics_on_the_synth_corpus() {
    let seed = fuzz_seed();
    let nests = corpus(seed, CORPUS_SIZE);
    assert!(nests.len() >= CORPUS_SIZE);
    let mut vectors_checked = 0usize;
    let mut nontrivial = 0usize;
    for (idx, nest) in nests.iter().enumerate() {
        let reference = execute(nest);
        let ref_cells = cells_bits(&reference);
        let ref_scalars = scalars_bits(&reference);
        for u in applicable_vectors(nest) {
            let transformed = unroll_and_jam(nest, &u).unwrap_or_else(|e| {
                panic!(
                    "seed {seed:#x} nest {idx} ({}): applicable vector {u:?} rejected: {e}\n{nest}",
                    nest.name()
                )
            });
            let after = execute(&transformed);
            assert_eq!(
                cells_bits(&after),
                ref_cells,
                "seed {seed:#x} nest {idx} ({}): unroll {u:?} changed array results\n{nest}",
                nest.name()
            );
            assert_eq!(
                scalars_bits(&after),
                ref_scalars,
                "seed {seed:#x} nest {idx} ({}): unroll {u:?} changed scalar results\n{nest}",
                nest.name()
            );
            // Scalar replacement composes on top of the jammed body; it
            // introduces compiler temporaries, so only the array image
            // must be preserved.
            let replaced = scalar_replacement(&transformed).nest;
            assert_eq!(
                cells_bits(&execute(&replaced)),
                ref_cells,
                "seed {seed:#x} nest {idx} ({}): unroll {u:?} + scalar replacement \
                 changed array results\n{nest}",
                nest.name()
            );
            vectors_checked += 1;
            if u.iter().any(|&c| c > 0) {
                nontrivial += 1;
            }
        }
    }
    // The suite is vacuous if dependence analysis rejected everything.
    assert!(
        nontrivial >= CORPUS_SIZE,
        "only {nontrivial} non-trivial vectors across {CORPUS_SIZE} nests \
         ({vectors_checked} total) — the corpus or the safety analysis regressed"
    );
    println!(
        "semantics fuzz: seed {seed:#x}, {CORPUS_SIZE} nests, \
         {vectors_checked} vectors ({nontrivial} non-trivial)"
    );
}

/// Register-tiling arm: seeded nests of depth 3–5 with unroll vectors
/// spanning `k` loops at once.  Same oracle as the 2-deep corpus —
/// interpreter equality, bitwise, with and without scalar replacement —
/// but the vectors here exercise the k-dimensional jam the paper never
/// reaches (its search stops at two loops).
#[test]
fn unroll_and_jam_preserves_semantics_on_deep_nests() {
    const DEEP_CORPUS: usize = 30;
    let seed = fuzz_seed();
    let nests = corpus_deep(seed, DEEP_CORPUS);
    assert!(nests.len() >= DEEP_CORPUS);
    let mut vectors_checked = 0usize;
    let mut multi_loop = 0usize;
    let mut depths_seen = std::collections::BTreeSet::new();
    for (idx, nest) in nests.iter().enumerate() {
        depths_seen.insert(nest.depth());
        let reference = execute(nest);
        let ref_cells = cells_bits(&reference);
        for u in applicable_vectors(nest) {
            let transformed = unroll_and_jam(nest, &u).unwrap_or_else(|e| {
                panic!(
                    "seed {seed:#x} deep nest {idx} ({}): applicable vector {u:?} rejected: {e}\n{nest}",
                    nest.name()
                )
            });
            assert_eq!(
                cells_bits(&execute(&transformed)),
                ref_cells,
                "seed {seed:#x} deep nest {idx} ({}): unroll {u:?} changed array results\n{nest}",
                nest.name()
            );
            let replaced = scalar_replacement(&transformed).nest;
            assert_eq!(
                cells_bits(&execute(&replaced)),
                ref_cells,
                "seed {seed:#x} deep nest {idx} ({}): unroll {u:?} + scalar replacement \
                 changed array results\n{nest}",
                nest.name()
            );
            vectors_checked += 1;
            if u.iter().filter(|&&c| c > 0).count() >= 2 {
                multi_loop += 1;
            }
        }
    }
    assert!(
        depths_seen.iter().max() >= Some(&4) && depths_seen.iter().min() <= Some(&3),
        "deep corpus must span depths 3..=5, saw {depths_seen:?}"
    );
    // The arm is vacuous unless genuinely multi-dimensional vectors
    // (two or more jammed loops at once) actually ran.
    assert!(
        multi_loop >= DEEP_CORPUS,
        "only {multi_loop} multi-loop vectors across {DEEP_CORPUS} deep nests \
         ({vectors_checked} total) — the deep corpus or the safety analysis regressed"
    );
    println!(
        "deep semantics fuzz: seed {seed:#x}, {DEEP_CORPUS} nests, \
         {vectors_checked} vectors ({multi_loop} multi-loop)"
    );
}

#[test]
fn fuzz_corpus_is_deterministic_for_a_fixed_seed() {
    let a = corpus(DEFAULT_SEED, 8);
    let b = corpus(DEFAULT_SEED, 8);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(format!("{x}"), format!("{y}"));
    }
}
