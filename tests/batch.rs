//! Properties of the parallel batch driver and the Result-based error
//! surface of every public `optimize*` entry point.

use ujam::core::brute::{optimize_brute, optimize_depbased};
use ujam::core::{
    optimize, optimize_batch, optimize_batch_traced_with_workers, optimize_batch_with_workers,
    optimize_in_space, optimize_traced, BalanceModel, OptimizeError, UnrollSpace,
};
use ujam::ir::{parse_expr, sub, subs, ArrayDecl, ArrayRef, Loop, LoopNest, Stmt};
use ujam::kernels::{kernels, optimize_suite};
use ujam::machine::MachineModel;
use ujam::trace::CollectingSink;

/// The headline batch property: `optimize_batch` over the full Table 2
/// suite is bitwise-identical to sequential `optimize` — same unroll
/// vectors, same transformed nests, same predictions — at every worker
/// count, because a batch only reschedules independent per-nest work.
#[test]
fn batch_equals_sequential_on_the_kernel_suite() {
    for machine in [MachineModel::dec_alpha(), MachineModel::hp_parisc()] {
        let nests: Vec<LoopNest> = kernels().iter().map(|k| k.nest()).collect();
        let sequential: Vec<_> = nests
            .iter()
            .map(|n| optimize(n, &machine).expect("Table 2 kernels are valid"))
            .collect();
        for workers in [1usize, 3, 8] {
            let batch =
                optimize_batch_with_workers(&nests, &machine, BalanceModel::CacheAware, workers);
            assert_eq!(batch.len(), sequential.len());
            for ((k, b), s) in kernels().iter().zip(&batch).zip(&sequential) {
                let b = b.as_ref().expect("Table 2 kernels are valid");
                assert_eq!(b.unroll, s.unroll, "{} (workers={workers})", k.name);
                assert_eq!(b.nest, s.nest, "{} (workers={workers})", k.name);
                assert_eq!(b.predicted, s.predicted, "{} (workers={workers})", k.name);
            }
        }
    }
}

/// The batch driver's trace-merge guarantee: no matter the worker
/// count, the batch's aggregate trace equals the concatenation of the
/// sequential per-nest traces (compared span-time-blind, since
/// wall-times differ run to run) — and tracing does not perturb the
/// optimization results, which stay bitwise-identical to the untraced
/// batch.
#[test]
fn batch_trace_is_the_sequential_concatenation() {
    let machine = MachineModel::dec_alpha();
    let nests: Vec<LoopNest> = kernels().iter().take(6).map(|k| k.nest()).collect();

    let sequential_sink = CollectingSink::new();
    let sequential: Vec<_> = nests
        .iter()
        .map(|n| {
            optimize_traced(n, &machine, BalanceModel::CacheAware, &sequential_sink)
                .expect("Table 2 kernels are valid")
        })
        .collect();
    let expected = sequential_sink.take().without_timing();

    for workers in [1usize, 3, 8] {
        let sink = CollectingSink::new();
        let batch = optimize_batch_traced_with_workers(
            &nests,
            &machine,
            BalanceModel::CacheAware,
            workers,
            &sink,
        );
        assert_eq!(
            sink.take().without_timing(),
            expected,
            "workers={workers}: batch trace must merge in input order"
        );
        for ((k, b), s) in kernels().iter().zip(&batch).zip(&sequential) {
            let b = b.as_ref().expect("Table 2 kernels are valid");
            assert_eq!(b.unroll, s.unroll, "{} (workers={workers})", k.name);
            assert_eq!(b.nest, s.nest, "{} (workers={workers})", k.name);
            assert_eq!(b.predicted, s.predicted, "{} (workers={workers})", k.name);
        }
    }
}

/// The suite helper pairs every roster entry with the batch plan for its
/// own nest, in roster order.
#[test]
fn optimize_suite_agrees_with_direct_optimization() {
    let machine = MachineModel::dec_alpha();
    for (k, plan) in optimize_suite(&machine) {
        let direct = optimize(&k.nest(), &machine).expect(k.name);
        let plan = plan.expect(k.name);
        assert_eq!(plan.unroll, direct.unroll, "{}", k.name);
    }
}

/// A structurally invalid nest (reads undeclared `Z`), assembled with the
/// raw constructor since `NestBuilder::build` refuses to produce one.
fn undeclared_array_nest() -> LoopNest {
    LoopNest::new(
        "bad",
        vec![ArrayDecl::new("A", &[16])],
        vec![Loop::new("J", 1, 8), Loop::new("I", 1, 8)],
        vec![Stmt::assign(
            ArrayRef::new("A", subs(&[sub("I")])),
            parse_expr("Z(I) + 1.0").expect("parses"),
        )],
    )
}

/// Negative path: malformed input returns `Err` from every public
/// `optimize*` entry point — none of them panic.
#[test]
fn malformed_nests_error_from_every_entry_point() {
    let machine = MachineModel::dec_alpha();
    let bad = undeclared_array_nest();
    let space = UnrollSpace::new(2, &[0], 4);

    assert!(matches!(
        optimize(&bad, &machine),
        Err(OptimizeError::InvalidNest(_))
    ));
    assert!(matches!(
        optimize_in_space(&bad, &machine, &space),
        Err(OptimizeError::InvalidNest(_))
    ));
    assert!(matches!(
        optimize_brute(&bad, &machine, &space),
        Err(OptimizeError::InvalidNest(_))
    ));
    assert!(matches!(
        optimize_depbased(&bad, &machine, &space),
        Err(OptimizeError::InvalidNest(_))
    ));
    let batch = optimize_batch(&[bad], &machine);
    assert!(matches!(batch[0], Err(OptimizeError::InvalidNest(_))));
}

/// Negative path: a depth-mismatched space is an error, not a panic, for
/// every space-taking entry point.
#[test]
fn depth_mismatch_errors_from_every_entry_point() {
    let machine = MachineModel::dec_alpha();
    let nest = kernels()[0].nest();
    let wrong = UnrollSpace::new(nest.depth() + 1, &[0], 4);
    let want = OptimizeError::DepthMismatch {
        nest: nest.depth(),
        space: nest.depth() + 1,
    };
    assert_eq!(
        optimize_in_space(&nest, &machine, &wrong).unwrap_err(),
        want
    );
    assert_eq!(optimize_brute(&nest, &machine, &wrong).unwrap_err(), want);
    assert_eq!(
        optimize_depbased(&nest, &machine, &wrong).unwrap_err(),
        want
    );
}

/// Errors in one batch element leave the rest of the batch intact.
#[test]
fn batch_isolates_per_nest_failures() {
    let machine = MachineModel::dec_alpha();
    let nests = vec![
        kernels()[0].nest(),
        undeclared_array_nest(),
        kernels()[1].nest(),
    ];
    let out = optimize_batch_with_workers(&nests, &machine, BalanceModel::CacheAware, 2);
    assert!(out[0].is_ok());
    assert!(matches!(out[1], Err(OptimizeError::InvalidNest(_))));
    assert!(out[2].is_ok());
}

/// `OptimizeError` behaves like a real error type: displayable, and the
/// transform variant exposes its source.
#[test]
fn optimize_error_displays_and_sources() {
    use std::error::Error;
    let machine = MachineModel::dec_alpha();
    let bad = undeclared_array_nest();
    let e = optimize(&bad, &machine).unwrap_err();
    assert!(e.to_string().contains("invalid nest"));
    assert!(e.source().is_none());
    let mismatch = OptimizeError::DepthMismatch { nest: 2, space: 3 };
    assert!(mismatch.to_string().contains("depth 3"));
}
