//! Integration tests of the TCP event-loop daemon: the versioned
//! handshake, a 100-client hostile soak, admission control (structured
//! `overloaded` sheds), read-timeout reaping, reply ordering under
//! pipelining, and bitwise agreement with the sequential batch
//! optimizer after all of it.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use ujam::core::optimize_batch;
use ujam::kernels::kernels;
use ujam::machine::MachineModel;
use ujam::metrics::{MetricsHandle, MetricsRegistry};
use ujam::serve::{ReactorConfig, ServeConfig, Server, Transports, PROTOCOL_VERSION};
use ujam::trace::json;

const HELLO: &str = "{\"id\":\"h\",\"cmd\":\"hello\",\"version\":1}";

/// Runs `body` against a daemon serving TCP on a fresh loopback port,
/// then shuts the daemon down cleanly over its own protocol.
///
/// A panic in `body` must not strand the daemon: `thread::scope` joins
/// every spawned thread before propagating a panic, so an unshut-down
/// daemon turns an assertion failure into a silent deadlock with the
/// message stuck in libtest's capture buffer.  The body therefore runs
/// under `catch_unwind`, the daemon is always shut down, and the panic
/// is re-raised afterwards.
fn with_tcp_daemon(
    cfg: ServeConfig,
    rcfg: ReactorConfig,
    registry: Option<Arc<MetricsRegistry>>,
    body: impl FnOnce(SocketAddr),
) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let handle = match &registry {
        Some(reg) => MetricsHandle::new(Arc::clone(reg)),
        None => MetricsHandle::disabled(),
    };
    let server = Server::with_metrics(cfg, ujam::trace::null_sink(), handle);
    std::thread::scope(|scope| {
        let daemon = scope.spawn(|| {
            server
                .run_reactor(
                    Transports {
                        tcp: Some(listener),
                        unix: None,
                    },
                    rcfg,
                )
                .expect("reactor runs until shutdown");
        });
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(addr)));
        shutdown_daemon(addr);
        daemon.join().expect("daemon thread exits cleanly");
        if let Err(panic) = outcome {
            std::panic::resume_unwind(panic);
        }
    });
}

/// Shuts the daemon down over the wire, like any client would.
///
/// The handshake and the shutdown command go out in a single write so
/// a short `read_timeout` (the reap tests run at 150 ms) has no idle
/// window to hit between them, and the whole exchange retries on a
/// fresh connection if the reaper wins the race anyway — under
/// parallel-test CPU load a client thread can stall longer than the
/// reap deadline between any two syscalls.
fn shutdown_daemon(addr: SocketAddr) {
    for _ in 0..10 {
        let Ok(stream) = TcpStream::connect(addr) else {
            return; // daemon already gone
        };
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut stream = stream;
        if stream
            .write_all(format!("{HELLO}\n{{\"id\":\"bye\",\"cmd\":\"shutdown\"}}\n").as_bytes())
            .is_err()
        {
            continue;
        }
        // Read to EOF: the daemon closes every socket as it exits, so a
        // successful shutdown yields the hello ack, the shutdown reply,
        // then EOF.  Anything else (reaped first, daemon mid-stop) is a
        // retry.
        let mut text = String::new();
        let _ = reader.read_to_string(&mut text);
        if text.contains("\"shutdown\":true") {
            return;
        }
    }
    panic!("daemon never acknowledged shutdown");
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

fn connect(addr: SocketAddr) -> Client {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    Client { stream, reader }
}

/// Connects and completes the versioned handshake.
fn greet(addr: SocketAddr) -> Client {
    let mut c = connect(addr);
    send(&mut c, HELLO);
    let ack = read_line(&mut c);
    assert!(
        ack.contains("\"ok\":true") && ack.contains(&format!("\"protocol\":{PROTOCOL_VERSION}")),
        "handshake ack: {ack}"
    );
    c
}

fn send(c: &mut Client, line: &str) {
    c.stream
        .write_all(format!("{line}\n").as_bytes())
        .expect("send line");
}

fn read_line(c: &mut Client) -> String {
    let mut line = String::new();
    let n = c.reader.read_line(&mut line).expect("read reply");
    assert!(n > 0, "daemon closed the connection unexpectedly");
    line.trim_end().to_string()
}

/// Reads until EOF, returning whatever lines arrived first.
fn read_to_eof(c: &mut Client) -> Vec<String> {
    let mut all = String::new();
    c.reader.read_to_string(&mut all).expect("read to eof");
    all.lines().map(str::to_string).collect()
}

/// The reference decisions: kernel name → (unroll, balance bits,
/// original-balance bits, registers) from the sequential batch
/// optimizer, the ground truth every ok reply must match bitwise.
type Reference = std::collections::BTreeMap<String, (Vec<u32>, u64, u64, i64)>;

fn reference() -> Reference {
    let suite = kernels();
    let nests: Vec<_> = suite.iter().map(|k| k.nest()).collect();
    optimize_batch(&nests, &MachineModel::dec_alpha())
        .iter()
        .zip(&suite)
        .map(|(plan, k)| {
            let plan = plan.as_ref().expect("suite kernels optimize");
            (
                k.name.to_string(),
                (
                    plan.unroll.clone(),
                    plan.predicted.balance.to_bits(),
                    plan.original.balance.to_bits(),
                    plan.predicted.registers,
                ),
            )
        })
        .collect()
}

/// Asserts one ok reply is bitwise the reference decision for `kernel`.
fn assert_bitwise(reply: &str, kernel: &str, reference: &Reference) {
    let doc = json::parse(reply).expect("reply is valid JSON");
    assert_eq!(
        doc.get("ok"),
        Some(&json::Value::Bool(true)),
        "expected ok reply for {kernel}: {reply}"
    );
    let (unroll, balance, original, registers) = &reference[kernel];
    let got_unroll: Vec<u32> = doc
        .get("unroll")
        .and_then(json::Value::as_array)
        .expect("unroll array")
        .iter()
        .map(|v| v.as_f64().expect("unroll component") as u32)
        .collect();
    assert_eq!(&got_unroll, unroll, "{kernel}: unroll diverged: {reply}");
    assert_eq!(
        doc.get("balance")
            .and_then(json::Value::as_f64)
            .expect("balance")
            .to_bits(),
        *balance,
        "{kernel}: balance not bitwise-identical: {reply}"
    );
    assert_eq!(
        doc.get("original_balance")
            .and_then(json::Value::as_f64)
            .expect("original_balance")
            .to_bits(),
        *original,
        "{kernel}: original balance not bitwise-identical: {reply}"
    );
    assert_eq!(
        doc.get("registers")
            .and_then(json::Value::as_f64)
            .expect("registers") as i64,
        *registers,
        "{kernel}: registers diverged: {reply}"
    );
}

/// ≥100 concurrent TCP clients in five behavior classes: valid
/// pipelined requests, half-written lines with mid-request disconnects,
/// oversized frames, wrong-version handshakes, and handshake-less
/// requests.  The daemon must answer every well-formed line with valid
/// JSON (ok or a structured shed), never panic, and still serve
/// bitwise-correct decisions afterwards.
#[test]
fn hostile_soak_100_concurrent_tcp_clients() {
    const CLIENTS: usize = 100;
    let valid = ["dmxpy0", "dmxpy1", "jacobi", "sor"];
    let reference = reference();

    with_tcp_daemon(
        ServeConfig {
            workers: 4,
            batch_max: 8,
            cache_capacity: 64,
            shards: 8,
            ..ServeConfig::default()
        },
        ReactorConfig::default(),
        None,
        |addr| {
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for c in 0..CLIENTS {
                    let reference = &reference;
                    handles.push(scope.spawn(move || match c % 5 {
                        // Well-behaved: handshake, two pipelined
                        // requests (a deliberate duplicate), ordered
                        // replies, each ok-and-bitwise or a structured
                        // shed.
                        0 => {
                            let kernel = valid[c % valid.len()];
                            let mut conn = greet(addr);
                            send(
                                &mut conn,
                                &format!("{{\"id\":\"{c}-a\",\"kernel\":\"{kernel}\"}}"),
                            );
                            send(
                                &mut conn,
                                &format!("{{\"id\":\"{c}-b\",\"kernel\":\"{kernel}\"}}"),
                            );
                            for tag in ["a", "b"] {
                                let reply = read_line(&mut conn);
                                assert!(
                                    reply.contains(&format!("\"id\":\"{c}-{tag}\"")),
                                    "client {c}: replies out of order: {reply}"
                                );
                                if reply.contains("\"ok\":true") {
                                    assert_bitwise(&reply, kernel, reference);
                                } else {
                                    assert!(
                                        reply.contains("\"overloaded\"")
                                            && reply.contains("\"retry_ms\""),
                                        "client {c}: non-ok replies must be structured \
                                         sheds: {reply}"
                                    );
                                }
                            }
                        }
                        // Half a line, then vanish mid-request.
                        1 => {
                            let mut conn = greet(addr);
                            conn.stream
                                .write_all(b"{\"id\":\"half-written\",\"kern")
                                .expect("partial write");
                            // Dropping both halves closes the socket.
                        }
                        // An oversized frame, then a valid request on
                        // the same connection: the stream must recover.
                        2 => {
                            let mut conn = greet(addr);
                            let huge = vec![b'x'; (1 << 20) + 4096];
                            conn.stream.write_all(&huge).expect("oversized line");
                            send(&mut conn, ""); // terminate the monster
                            send(
                                &mut conn,
                                &format!("{{\"id\":\"{c}-ok\",\"kernel\":\"sor\"}}"),
                            );
                            let first = read_line(&mut conn);
                            assert!(
                                first.contains("frame_too_long"),
                                "client {c}: oversized line must be a structured \
                                 error: {first}"
                            );
                            let second = read_line(&mut conn);
                            assert!(
                                second.contains(&format!("\"id\":\"{c}-ok\"")),
                                "client {c}: stream must recover after the bad frame: \
                                 {second}"
                            );
                        }
                        // Wrong protocol version: structured rejection,
                        // then the daemon hangs up.
                        3 => {
                            let mut conn = connect(addr);
                            send(&mut conn, "{\"id\":\"v9\",\"cmd\":\"hello\",\"version\":9}");
                            let lines = read_to_eof(&mut conn);
                            assert!(
                                lines.first().is_some_and(|l| l.contains("bad_version")),
                                "client {c}: wrong version must be rejected: {lines:?}"
                            );
                        }
                        // No handshake at all: structured rejection,
                        // then the daemon hangs up.
                        _ => {
                            let mut conn = connect(addr);
                            send(&mut conn, &format!("{{\"id\":\"{c}\",\"kernel\":\"sor\"}}"));
                            let lines = read_to_eof(&mut conn);
                            assert!(
                                lines
                                    .first()
                                    .is_some_and(|l| l.contains("handshake_required")),
                                "client {c}: handshake-less requests must be rejected: \
                                 {lines:?}"
                            );
                        }
                    }));
                }
                for (c, h) in handles.into_iter().enumerate() {
                    h.join().unwrap_or_else(|_| panic!("client {c} panicked"));
                }
            });

            // After the storm: every kernel the soak touched still
            // serves decisions bitwise-identical to optimize_batch.
            let mut conn = greet(addr);
            for kernel in valid {
                send(
                    &mut conn,
                    &format!("{{\"id\":\"probe\",\"kernel\":\"{kernel}\"}}"),
                );
                assert_bitwise(&read_line(&mut conn), kernel, &reference);
            }
        },
    );
}

/// A pipelined burst far past the queue cap: the daemon answers every
/// line in order, sheds the overflow with structured `overloaded`
/// replies carrying `retry_ms`, and serves bitwise-correct decisions
/// once the load passes.
#[test]
fn overload_sheds_structured_errors_and_recovers() {
    const BURST: usize = 40;
    let reference = reference();
    let registry = Arc::new(MetricsRegistry::new());

    with_tcp_daemon(
        ServeConfig {
            workers: 1,
            batch_max: 1,
            cache_capacity: 0, // every request computes: the queue backs up
            shards: 1,
            ..ServeConfig::default()
        },
        ReactorConfig {
            max_queue: 2,
            ..ReactorConfig::default()
        },
        Some(Arc::clone(&registry)),
        |addr| {
            let mut conn = greet(addr);
            let mut payload = String::new();
            for i in 0..BURST {
                payload.push_str(&format!("{{\"id\":\"r{i}\",\"kernel\":\"dmxpy1\"}}\n"));
            }
            conn.stream
                .write_all(payload.as_bytes())
                .expect("burst write");

            let mut shed = 0;
            let mut served = 0;
            for i in 0..BURST {
                let reply = read_line(&mut conn);
                assert!(
                    reply.contains(&format!("\"id\":\"r{i}\"")),
                    "reply {i} out of order: {reply}"
                );
                if reply.contains("\"ok\":true") {
                    assert_bitwise(&reply, "dmxpy1", &reference);
                    served += 1;
                } else {
                    assert!(
                        reply.contains("\"overloaded\"") && reply.contains("\"retry_ms\""),
                        "shed replies must be structured with a backoff: {reply}"
                    );
                    shed += 1;
                }
            }
            assert!(shed >= 1, "a 20x-overcommitted queue must shed");
            assert!(served >= 1, "admitted work must still be answered");
            assert_eq!(shed + served, BURST);
            assert_eq!(
                registry.snapshot().counter("serve.shed"),
                shed as u64,
                "every shed is counted"
            );

            // Post-load: the daemon answers fresh work, bitwise correct.
            send(&mut conn, "{\"id\":\"after\",\"kernel\":\"sor\"}");
            assert_bitwise(&read_line(&mut conn), "sor", &reference);
        },
    );
}

/// Idle and slow-loris connections are reaped by the read timeout and
/// counted — the fix for the blocking reader that parked a thread
/// forever on a silent client.
#[test]
fn idle_and_slow_loris_connections_are_reaped() {
    let registry = Arc::new(MetricsRegistry::new());
    with_tcp_daemon(
        ServeConfig {
            workers: 1,
            batch_max: 1,
            cache_capacity: 16,
            shards: 1,
            ..ServeConfig::default()
        },
        ReactorConfig {
            read_timeout: Duration::from_millis(150),
            ..ReactorConfig::default()
        },
        Some(Arc::clone(&registry)),
        |addr| {
            // One connection greets then goes silent; one trickles half
            // a line and stalls (the slow-loris shape).
            let mut idle = greet(addr);
            let mut loris = greet(addr);
            loris
                .stream
                .write_all(b"{\"id\":\"loris\"")
                .expect("partial write");

            // Both must be hung up on by the daemon, not kept forever.
            let mut buf = String::new();
            idle.reader.read_to_string(&mut buf).expect("idle reaped");
            assert!(buf.is_empty(), "reap sends nothing: {buf:?}");
            let mut buf = String::new();
            loris.reader.read_to_string(&mut buf).expect("loris reaped");
            assert!(buf.is_empty(), "reap sends nothing: {buf:?}");

            assert_eq!(
                registry.snapshot().counter("serve.conn.timeout"),
                2,
                "both reaps are counted"
            );
            // The daemon is still healthy for new clients.  Pipeline
            // the handshake with the request: at a 150 ms read timeout,
            // a greet-then-send roundtrip leaves an idle window the
            // reaper can hit when the test host is saturated.
            let mut conn = connect(addr);
            send(
                &mut conn,
                &format!("{HELLO}\n{{\"id\":\"alive\",\"kernel\":\"sor\"}}"),
            );
            assert!(read_line(&mut conn).contains("\"ok\":true"), "hello ack");
            assert!(read_line(&mut conn).contains("\"ok\":true"), "alive reply");
        },
    );
}

/// The whole Table 2 suite pipelined over one TCP connection: replies
/// in request order, every decision bitwise-identical to the
/// sequential batch optimizer.
#[test]
fn full_suite_over_tcp_is_bitwise_identical_to_optimize_batch() {
    let reference = reference();
    let suite = kernels();
    with_tcp_daemon(
        ServeConfig {
            workers: 4,
            batch_max: 8,
            cache_capacity: 64,
            shards: 4,
            ..ServeConfig::default()
        },
        ReactorConfig::default(),
        None,
        |addr| {
            let mut conn = greet(addr);
            let mut payload = String::new();
            for k in &suite {
                payload.push_str(&format!(
                    "{{\"id\":\"{}\",\"kernel\":\"{}\"}}\n",
                    k.name, k.name
                ));
            }
            conn.stream
                .write_all(payload.as_bytes())
                .expect("pipelined suite");
            for k in &suite {
                let reply = read_line(&mut conn);
                assert!(
                    reply.contains(&format!("\"id\":\"{}\"", k.name)),
                    "suite replies must arrive in request order: {reply}"
                );
                assert_bitwise(&reply, k.name, &reference);
            }
        },
    );
}

/// `stats` and `flight` admin probes interleaved with optimization
/// requests over one pipelined TCP connection: every reply arrives in
/// request order, kernel replies stay bitwise-identical to
/// `optimize_batch`, the probes never land in the request counters or
/// the flight recorder, and the recorder ends up holding exactly the
/// optimization requests.
#[test]
fn admin_probes_interleaved_with_requests_do_not_perturb_replies() {
    let reference = reference();
    let registry = Arc::new(MetricsRegistry::new());
    let work = ["dmxpy1", "sor", "jacobi", "dmxpy0", "dmxpy1", "sor"];

    with_tcp_daemon(
        ServeConfig {
            workers: 2,
            batch_max: 4,
            cache_capacity: 16,
            shards: 2,
            ..ServeConfig::default()
        },
        ReactorConfig::default(),
        Some(Arc::clone(&registry)),
        |addr| {
            let mut conn = greet(addr);
            for (i, kernel) in work.iter().enumerate() {
                // Pipeline a request and a probe together, so the probe
                // (answered inline on the reactor thread) races the
                // request (answered by a worker) for the reply slot.
                send(
                    &mut conn,
                    &format!("{{\"id\":\"r{i}\",\"kernel\":\"{kernel}\"}}"),
                );
                let probe = if i % 2 == 0 {
                    format!("{{\"id\":\"p{i}\",\"cmd\":\"stats\"}}")
                } else {
                    format!("{{\"id\":\"p{i}\",\"cmd\":\"flight\"}}")
                };
                send(&mut conn, &probe);
                let reply = read_line(&mut conn);
                assert!(
                    reply.contains(&format!("\"id\":\"r{i}\"")),
                    "request reply {i} out of order: {reply}"
                );
                assert_bitwise(&reply, kernel, &reference);
                let probe_reply = read_line(&mut conn);
                assert!(
                    probe_reply.contains(&format!("\"id\":\"p{i}\""))
                        && probe_reply.contains("\"ok\":true"),
                    "probe reply {i} out of order or refused: {probe_reply}"
                );
            }

            // The richer probe shapes answer on the same connection too.
            send(
                &mut conn,
                "{\"id\":\"ps\",\"cmd\":\"stats\",\"series\":true}",
            );
            let series = read_line(&mut conn);
            assert!(
                series.contains("\"series\":{") && series.contains("\"stats\":{"),
                "series stats reply carries both documents: {series}"
            );
            send(
                &mut conn,
                "{\"id\":\"pf\",\"cmd\":\"flight\",\"slow_only\":true}",
            );
            let slow = read_line(&mut conn);
            assert!(
                slow.contains("\"recent\":[]"),
                "slow-only flight replies omit the recent ring: {slow}"
            );

            // Ground truth: only optimization requests count as
            // requests and reach the flight recorder; probes are admin
            // traffic.
            let snap = registry.snapshot();
            assert_eq!(
                snap.counter("serve.requests"),
                work.len() as u64,
                "admin probes must not count as requests"
            );
            assert!(
                snap.counter("serve.admin_requests") >= work.len() as u64 + 2,
                "every probe counts as admin traffic"
            );

            send(&mut conn, "{\"id\":\"pd\",\"cmd\":\"flight\"}");
            let dump = read_line(&mut conn);
            let doc = json::parse(&dump).expect("flight reply parses");
            let recent = doc
                .get("flight")
                .and_then(|f| f.get("recent"))
                .and_then(json::Value::as_array)
                .expect("flight reply has a recent ring");
            assert_eq!(
                recent.len(),
                work.len(),
                "the recorder holds exactly the optimization requests: {dump}"
            );
            // Every retained timeline has its full edge breakdown: the
            // replies above were read off the socket, so each request
            // was framed, queued, answered, and flushed.
            for t in recent {
                let durations = t.get("durations").expect("timeline durations");
                for key in ["queue_ns", "flush_ns", "total_ns"] {
                    assert!(
                        durations.get(key).and_then(json::Value::as_f64).is_some(),
                        "timeline missing {key}: {dump}"
                    );
                }
                let outcome = t.get("outcome").cloned();
                assert_eq!(
                    outcome,
                    Some(json::Value::String("ok".to_string())),
                    "soaked requests all succeeded: {dump}"
                );
            }
        },
    );
}

/// The Unix socket still speaks the PR 4 protocol — no handshake — now
/// through the same event loop, and a client that connects and leaves
/// without sending anything no longer wedges anything.
#[test]
fn unix_socket_keeps_the_legacy_protocol_through_the_reactor() {
    use std::os::unix::net::{UnixListener, UnixStream};
    let dir = std::env::temp_dir().join(format!("ujam-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("reactor.sock");
    let _ = std::fs::remove_file(&path);
    let listener = UnixListener::bind(&path).expect("bind unix socket");

    let server = Server::new(
        ServeConfig {
            workers: 2,
            batch_max: 4,
            cache_capacity: 16,
            shards: 2,
            ..ServeConfig::default()
        },
        ujam::trace::null_sink(),
    );
    std::thread::scope(|scope| {
        let daemon = scope.spawn(|| {
            server
                .run_reactor(
                    Transports {
                        tcp: None,
                        unix: Some(listener),
                    },
                    ReactorConfig::default(),
                )
                .expect("reactor runs until shutdown");
        });

        // A ghost: connects, says nothing, leaves.  Pre-reactor this
        // parked a daemon thread forever.
        drop(UnixStream::connect(&path).expect("ghost connects"));

        // A legacy client: no handshake, request answered directly.
        let stream = UnixStream::connect(&path).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        writer
            .write_all(b"{\"id\":\"legacy\",\"kernel\":\"dmxpy1\"}\n")
            .expect("send");
        let mut reader = BufReader::new(stream);
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("reply");
        assert!(reply.contains("\"ok\":true"), "{reply}");
        assert!(reply.contains("\"id\":\"legacy\""), "{reply}");

        writer
            .write_all(b"{\"id\":\"bye\",\"cmd\":\"shutdown\"}\n")
            .expect("send shutdown");
        let mut ack = String::new();
        reader.read_line(&mut ack).expect("shutdown ack");
        assert!(ack.contains("\"shutdown\":true"), "{ack}");
        daemon.join().expect("daemon exits cleanly");
    });
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);
}
