//! Black-box tests of the `ujam` command-line driver.

use std::process::{Command, Output};

fn ujam(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ujam"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

#[test]
fn list_names_all_nineteen_kernels() {
    let out = ujam(&["list"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for name in ["jacobi", "mmjki", "vpenta.7", "shal"] {
        assert!(text.contains(name), "missing {name}");
    }
    assert_eq!(text.lines().count(), 20); // header + 19 rows
}

#[test]
fn show_prints_fortran_style_listing() {
    let out = ujam(&["show", "dmxpy0"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("DO J = 1, 240"));
    assert!(text.contains("Y(I) = Y(I) + X(J) * M(I,J)"));
}

#[test]
fn deps_reports_counts_and_bounds() {
    let out = ujam(&["deps", "sor"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("true:"));
    assert!(text.contains("input:"));
    assert!(text.contains("safe unroll bounds"));
}

#[test]
fn tables_prints_one_row_per_offset() {
    let out = ujam(&["tables", "dmxpy0", "3"]);
    assert!(out.status.success());
    let text = stdout(&out);
    // Header + u = 0..=3.
    assert!(text.lines().count() >= 6, "{text}");
    assert!(text.contains("lines/it"));
}

#[test]
fn optimize_emits_a_transformed_loop() {
    let out = ujam(&["optimize", "dmxpy0", "--machine", "alpha"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("chosen unroll vector"));
    assert!(text.contains("after scalar replacement"));
    assert!(text.contains("DO J = 1, 240, "), "J loop should be stepped");
}

#[test]
fn simulate_reports_speedup() {
    let out = ujam(&[
        "simulate",
        "afold",
        "--machine",
        "alpha",
        "--model",
        "cache",
    ]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("speedup:"));
    assert!(text.contains("original:"));
}

#[test]
fn bad_inputs_fail_with_usage() {
    for args in [
        &["frobnicate"][..],
        &["show", "nope"][..],
        &["optimize", "sor", "--machine", "vax"][..],
        &[][..],
    ] {
        let out = ujam(args);
        assert!(!out.status.success(), "{args:?} should fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("usage:"), "{args:?}: {err}");
    }
}

#[test]
fn fortran_files_round_trip_through_the_cli() {
    let dir = std::env::temp_dir().join("ujam_cli_test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("intro.f");
    // Emit a kernel as Fortran, re-read it, optimize it.
    let emitted = ujam(&["emit", "dmxpy0"]);
    assert!(emitted.status.success());
    std::fs::write(&path, stdout(&emitted)).expect("write source");

    let shown = ujam(&["show", path.to_str().expect("utf8 path")]);
    assert!(shown.status.success());
    assert!(stdout(&shown).contains("Y(I) = Y(I) + X(J) * M(I,J)"));

    let optimized = ujam(&["simulate", path.to_str().expect("utf8 path")]);
    assert!(optimized.status.success());
    assert!(stdout(&optimized).contains("speedup:"));

    let bad = dir.join("bad.f");
    std::fs::write(&bad, "      DO I = 1, N\n      ENDDO\n      END").expect("write");
    let out = ujam(&["show", bad.to_str().expect("utf8 path")]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("integer constant"));
}

#[test]
fn schedule_reports_op_mix_and_makespan() {
    let out = ujam(&["schedule", "dmxpy0"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("makespan"));
    assert!(text.contains("per original iteration"));
}
