//! Black-box tests of the `ujam` command-line driver.

use std::process::{Command, Output};

fn ujam(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ujam"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

#[test]
fn list_names_all_nineteen_kernels() {
    let out = ujam(&["list"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for name in ["jacobi", "mmjki", "vpenta.7", "shal"] {
        assert!(text.contains(name), "missing {name}");
    }
    assert_eq!(text.lines().count(), 20); // header + 19 rows
}

#[test]
fn show_prints_fortran_style_listing() {
    let out = ujam(&["show", "dmxpy0"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("DO J = 1, 240"));
    assert!(text.contains("Y(I) = Y(I) + X(J) * M(I,J)"));
}

#[test]
fn deps_reports_counts_and_bounds() {
    let out = ujam(&["deps", "sor"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("true:"));
    assert!(text.contains("input:"));
    assert!(text.contains("safe unroll bounds"));
}

#[test]
fn tables_prints_one_row_per_offset() {
    let out = ujam(&["tables", "dmxpy0", "3"]);
    assert!(out.status.success());
    let text = stdout(&out);
    // Header + u = 0..=3.
    assert!(text.lines().count() >= 6, "{text}");
    assert!(text.contains("lines/it"));
}

#[test]
fn optimize_emits_a_transformed_loop() {
    let out = ujam(&["optimize", "dmxpy0", "--machine", "alpha"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("chosen unroll vector"));
    assert!(text.contains("after scalar replacement"));
    assert!(text.contains("DO J = 1, 240, "), "J loop should be stepped");
}

#[test]
fn simulate_reports_speedup() {
    let out = ujam(&[
        "simulate",
        "afold",
        "--machine",
        "alpha",
        "--model",
        "cache",
    ]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("speedup:"));
    assert!(text.contains("original:"));
}

#[test]
fn bad_inputs_fail_with_usage() {
    for args in [
        &["frobnicate"][..],
        &["show", "nope"][..],
        &["optimize", "sor", "--machine", "vax"][..],
        &[][..],
    ] {
        let out = ujam(args);
        assert!(!out.status.success(), "{args:?} should fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("usage:"), "{args:?}: {err}");
    }
}

#[test]
fn fortran_files_round_trip_through_the_cli() {
    let dir = std::env::temp_dir().join("ujam_cli_test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("intro.f");
    // Emit a kernel as Fortran, re-read it, optimize it.
    let emitted = ujam(&["emit", "dmxpy0"]);
    assert!(emitted.status.success());
    std::fs::write(&path, stdout(&emitted)).expect("write source");

    let shown = ujam(&["show", path.to_str().expect("utf8 path")]);
    assert!(shown.status.success());
    assert!(stdout(&shown).contains("Y(I) = Y(I) + X(J) * M(I,J)"));

    let optimized = ujam(&["simulate", path.to_str().expect("utf8 path")]);
    assert!(optimized.status.success());
    assert!(stdout(&optimized).contains("speedup:"));

    let bad = dir.join("bad.f");
    std::fs::write(&bad, "      DO I = 1, N\n      ENDDO\n      END").expect("write");
    let out = ujam(&["show", bad.to_str().expect("utf8 path")]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("integer constant"));
}

/// `--explain` on the paper's introductory loop (Figure 8's `A(J) =
/// A(J) + B(I)`), fed through a Fortran file: the provenance table
/// reports exactly one winning candidate, and it is the same unroll
/// vector the library's table-driven search returns.
#[test]
fn explain_reports_the_search_winner_on_the_intro_loop() {
    let nest = ujam::ir::NestBuilder::new("intro")
        .array("A", &[242])
        .array("B", &[242])
        .loop_("J", 1, 240)
        .loop_("I", 1, 240)
        .stmt("A(J) = A(J) + B(I)")
        .build();
    let dir = std::env::temp_dir().join("ujam_cli_explain_test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("intro.f");
    std::fs::write(&path, ujam::fortran::emit(&nest)).expect("write source");

    let out = ujam(&["optimize", path.to_str().expect("utf8 path"), "--explain"]);
    assert!(out.status.success());
    let text = stdout(&out);

    let plan = ujam::core::optimize(&nest, &ujam::machine::MachineModel::dec_alpha())
        .expect("intro loop is valid");
    let u_text = format!(
        "[{}]",
        plan.unroll
            .iter()
            .map(|u| u.to_string())
            .collect::<Vec<_>>()
            .join(",")
    );

    let won: Vec<&str> = text
        .lines()
        .filter(|l| l.split_whitespace().next_back() == Some("won"))
        .collect();
    assert_eq!(won.len(), 1, "exactly one winning candidate: {text}");
    assert_eq!(
        won[0].split_whitespace().next(),
        Some(u_text.as_str()),
        "explain winner must be the library's winner"
    );
    assert!(
        text.contains(&format!("chosen unroll vector: {:?}", plan.unroll)),
        "CLI plan must match the library plan"
    );
}

/// `--trace=json` emits one machine-readable document on stdout that the
/// in-tree parser accepts, with spans for every pipeline pass, counters
/// from the analysis cache, and exactly one winning explain record.
#[test]
fn trace_json_emits_parseable_spans_and_provenance() {
    let out = ujam(&["optimize", "dmxpy0", "--trace=json"]);
    assert!(out.status.success());
    let doc = ujam::trace::json::parse(&stdout(&out)).expect("stdout is one valid JSON document");

    let span_names: Vec<&str> = doc
        .get("spans")
        .and_then(|s| s.as_array())
        .expect("spans array")
        .iter()
        .filter_map(|s| s.get("name")?.as_str())
        .collect();
    for pass in [
        "select-loops",
        "build-tables",
        "search-space",
        "apply-transform",
    ] {
        assert!(
            span_names.contains(&pass),
            "missing span {pass}: {span_names:?}"
        );
    }

    let counters = doc
        .get("counters")
        .and_then(|c| c.as_array())
        .expect("counters array");
    assert!(!counters.is_empty(), "analysis cache emits counters");

    let verdicts: Vec<&str> = doc
        .get("explain")
        .and_then(|e| e.as_array())
        .expect("explain array")
        .iter()
        .filter_map(|e| e.get("verdict")?.as_str())
        .collect();
    assert_eq!(
        verdicts.iter().filter(|v| **v == "won").count(),
        1,
        "exactly one candidate wins: {verdicts:?}"
    );
}

/// Regression: an unknown kernel name must be a clean structured
/// failure — nonzero exit, the error on stderr, and nothing on stdout
/// (a `--trace=json` consumer must never see half a document).
#[test]
fn unknown_kernel_exits_nonzero_with_error_on_stderr_only() {
    for args in [
        &["optimize", "nosuchkernel"][..],
        &["optimize", "nosuchkernel", "--trace=json"][..],
    ] {
        let out = ujam(args);
        assert!(!out.status.success(), "{args:?} must fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("unknown kernel") && err.contains("nosuchkernel"),
            "{args:?}: {err}"
        );
        assert!(
            out.stdout.is_empty(),
            "{args:?}: stdout must stay clean, got {:?}",
            stdout(&out)
        );
    }
}

/// Regression: a malformed `--trace=` value must be rejected up front
/// with the same discipline — nonzero exit, structured error on stderr,
/// empty stdout — instead of being silently ignored.
#[test]
fn malformed_trace_flag_exits_nonzero_with_error_on_stderr_only() {
    for (args, expected) in [
        (
            &["optimize", "jacobi", "--trace=bogus"][..],
            "expected json, human, or chrome",
        ),
        (
            &["optimize", "jacobi", "--trace="][..],
            "expected json, human, or chrome",
        ),
        // The daemon's trace output is shutdown telemetry, not a
        // per-run document, so it has no chrome mode.
        (&["serve", "--trace=bogus"][..], "expected json or human"),
    ] {
        let out = ujam(args);
        assert!(!out.status.success(), "{args:?} must fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("bad --trace value") && err.contains(expected),
            "{args:?}: {err}"
        );
        assert!(
            out.stdout.is_empty(),
            "{args:?}: stdout must stay clean, got {:?}",
            stdout(&out)
        );
    }
}

/// `ujam profile` emits one versioned JSON document on stdout, in both
/// flag spellings (`--kernel matmul` positional alias included), and
/// the report parses with the in-tree JSON parser.
#[test]
fn profile_emits_a_versioned_json_report() {
    for args in [
        &["profile", "--kernel", "matmul"][..],
        &["profile", "--kernel=matmul"][..],
        &["profile", "mmjki"][..],
    ] {
        let out = ujam(args);
        assert!(out.status.success(), "{args:?} must succeed");
        let doc = ujam::trace::json::parse(&stdout(&out)).expect("stdout is one JSON document");
        assert_eq!(
            doc.get("version").and_then(|v| v.as_f64()),
            Some(1.0),
            "{args:?}: report must carry its schema version"
        );
        assert_eq!(
            doc.get("nest").and_then(|v| v.as_str()),
            Some("mmjki"),
            "{args:?}: matmul must resolve to the mmjki kernel"
        );
        for field in ["geometry", "accesses", "cold", "histogram", "arrays"] {
            assert!(doc.get(field).is_some(), "{args:?}: missing {field}");
        }
    }
}

/// `--profile-out` writes the report to the file (stdout stays clean of
/// JSON), and `--cache-geometry` overrides the machine's cache in both
/// flag spellings.
#[test]
fn profile_flags_accept_both_spellings() {
    let dir = std::env::temp_dir().join("ujam_cli_profile_test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("report.json");
    let path_s = path.to_str().expect("utf8 path");
    let out = ujam(&["profile", "jacobi", "--profile-out", path_s]);
    assert!(out.status.success());
    assert!(out.stdout.is_empty(), "report goes to the file, not stdout");
    let written = std::fs::read_to_string(&path).expect("report written");
    let doc = ujam::trace::json::parse(written.trim()).expect("file holds one JSON document");

    let separate = ujam(&["profile", "jacobi", "--cache-geometry", "2048:64:2"]);
    let inline = ujam(&["profile", "jacobi", "--cache-geometry=2048:64:2"]);
    assert!(separate.status.success() && inline.status.success());
    assert_eq!(
        stdout(&separate),
        stdout(&inline),
        "both flag spellings must produce identical reports"
    );
    let overridden = ujam::trace::json::parse(stdout(&inline).trim()).expect("valid report");
    assert_eq!(
        overridden
            .get("geometry")
            .and_then(|g| g.get("line_bytes"))
            .and_then(|v| v.as_f64()),
        Some(64.0)
    );
    // The default-geometry report differs from the overridden one.
    assert_ne!(
        doc.get("geometry"),
        overridden.get("geometry"),
        "--cache-geometry must actually change the simulated cache"
    );
}

/// Regression: unknown or malformed values for the new flags are clean
/// structured failures — nonzero exit, the error on stderr, stdout
/// empty — in both `--flag V` and `--flag=V` spellings.
#[test]
fn malformed_profile_and_cost_model_flags_fail_cleanly() {
    for (args, expected) in [
        (
            &["optimize", "jacobi", "--cost-model", "exact"][..],
            "bad --cost-model value",
        ),
        (
            &["optimize", "jacobi", "--cost-model=exact"][..],
            "bad --cost-model value",
        ),
        (
            &["optimize", "jacobi", "--cost-model="][..],
            "bad --cost-model value",
        ),
        (
            &["profile", "jacobi", "--cache-geometry", "32"][..],
            "bad --cache-geometry value",
        ),
        (
            &["profile", "jacobi", "--cache-geometry=8192:0:1"][..],
            "bad --cache-geometry value",
        ),
        (
            &["profile", "jacobi", "--cache-geometry=8192:48:1"][..],
            "bad --cache-geometry value",
        ),
        (
            &["profile", "jacobi", "--cache-geometry=a:b:c"][..],
            "bad --cache-geometry value",
        ),
        (
            &["profile", "--kernel", "nosuchkernel"][..],
            "unknown kernel",
        ),
        (
            &["profile", "jacobi", "--kernel", "sor"][..],
            "profile takes one loop",
        ),
    ] {
        let out = ujam(args);
        assert!(!out.status.success(), "{args:?} must fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(expected), "{args:?}: {err}");
        assert!(
            out.stdout.is_empty(),
            "{args:?}: stdout must stay clean, got {:?}",
            stdout(&out)
        );
    }
}

/// `--cost-model` is accepted in both spellings and is reflected in the
/// optimize header; the analytic spelling changes nothing else about
/// the output.
#[test]
fn cost_model_flag_accepts_both_spellings() {
    let baseline = ujam(&["optimize", "dmxpy0"]);
    let separate = ujam(&["optimize", "dmxpy0", "--cost-model", "analytic"]);
    let inline = ujam(&["optimize", "dmxpy0", "--cost-model=analytic"]);
    assert!(baseline.status.success() && separate.status.success() && inline.status.success());
    assert_eq!(stdout(&separate), stdout(&inline));
    assert_eq!(
        stdout(&baseline),
        stdout(&separate),
        "analytic is the default"
    );
    assert!(stdout(&baseline).contains("cost model analytic"));
}

#[test]
fn schedule_reports_op_mix_and_makespan() {
    let out = ujam(&["schedule", "dmxpy0"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("makespan"));
    assert!(text.contains("per original iteration"));
}
