//! End-to-end integration: optimize → transform → verify → simulate,
//! across the whole kernel suite and both machine models.

use ujam::core::{optimize, optimize_with, BalanceModel};
use ujam::dep::{safe_unroll_bounds, DepGraph};
use ujam::ir::interp::execute;
use ujam::ir::transform::scalar_replacement;
use ujam::kernels::{kernel, kernels};
use ujam::machine::MachineModel;
use ujam::sim::simulate;

/// Every kernel optimizes without panicking, the chosen vector is within
/// the dependence-safety bounds, and the predicted balance never gets
/// worse.
#[test]
fn every_kernel_optimizes_safely_on_both_machines() {
    for machine in [MachineModel::dec_alpha(), MachineModel::hp_parisc()] {
        for k in kernels() {
            let nest = k.nest();
            let graph = DepGraph::build(&nest);
            let bounds = safe_unroll_bounds(&nest, &graph);
            let plan = optimize(&nest, &machine).expect("valid nest");
            for (l, (&u, &b)) in plan.unroll.iter().zip(&bounds).enumerate() {
                assert!(
                    u <= b,
                    "{} on {}: loop {l} unrolled {u} beyond safe bound {b}",
                    k.name,
                    machine.name()
                );
            }
            assert!(
                plan.predicted.balance <= plan.original.balance + 1e-9,
                "{} on {}: balance worsened",
                k.name,
                machine.name()
            );
            // Register constraint respected.
            assert!(
                plan.predicted.registers <= machine.registers_for_replacement() as i64,
                "{} on {}: register budget exceeded",
                k.name,
                machine.name()
            );
        }
    }
}

/// The transformation the optimizer applies preserves program semantics
/// (checked with the reference interpreter on representative kernels).
#[test]
fn optimizer_transformations_preserve_semantics() {
    let machine = MachineModel::dec_alpha();
    for name in ["jacobi", "dmxpy0", "vpenta.7", "sor", "collc.2"] {
        let nest = kernel(name).expect("known kernel").nest();
        let plan = optimize(&nest, &machine).expect("valid nest");
        assert_eq!(
            execute(&plan.nest),
            execute(&nest),
            "{name}: unroll-and-jam by {:?} changed semantics",
            plan.unroll
        );
    }
}

/// Figures 8/9 shape at the granularity of single loops: on the Alpha the
/// cache-aware plan is simulated to be at least as fast as no transform
/// for the memory-bound kernels the paper highlights.
#[test]
fn memory_bound_kernels_speed_up() {
    let machine = MachineModel::dec_alpha();
    for name in ["afold", "dmxpy1", "mmjik", "gmtry.3"] {
        let nest = kernel(name).expect("known kernel").nest();
        let plan = optimize(&nest, &machine).expect("valid nest");
        let before = simulate(&nest, &machine);
        let after = simulate(&plan.nest, &machine);
        assert!(
            after.cycles < before.cycles,
            "{name}: no speedup ({} -> {})",
            before.cycles,
            after.cycles
        );
    }
}

/// The cache-aware model never chooses a (simulated) slower plan than the
/// all-hits model by more than noise — the paper's §5.2 comparison.
#[test]
fn cache_model_is_no_worse_than_all_hits() {
    let machine = MachineModel::dec_alpha();
    for k in kernels() {
        let nest = k.nest();
        let nc = optimize_with(&nest, &machine, BalanceModel::AllHits).expect("valid nest");
        let c = optimize_with(&nest, &machine, BalanceModel::CacheAware).expect("valid nest");
        let t_nc = simulate(&nc.nest, &machine).cycles;
        let t_c = simulate(&c.nest, &machine).cycles;
        assert!(
            t_c <= t_nc * 1.05,
            "{}: cache model lost ({} vs {})",
            k.name,
            t_c,
            t_nc
        );
    }
}

/// Scalar replacement of an optimized kernel never increases memory
/// operations, and the balance prediction's M matches the transform.
#[test]
fn predictions_match_the_transformed_loop() {
    let machine = MachineModel::hp_parisc();
    for name in ["dmxpy0", "mmjki", "cond.9", "shal"] {
        let nest = kernel(name).expect("known kernel").nest();
        let plan = optimize(&nest, &machine).expect("valid nest");
        let replaced = scalar_replacement(&plan.nest);
        assert_eq!(
            replaced.stats.memory_ops() as f64,
            plan.predicted.memory_ops,
            "{name}: predicted M diverges from the actual transform"
        );
        assert_eq!(
            replaced.stats.registers as i64, plan.predicted.registers,
            "{name}: predicted registers diverge"
        );
        assert_eq!(
            plan.nest.flops_per_iter() as f64,
            plan.predicted.flops,
            "{name}: predicted flops diverge"
        );
    }
}
